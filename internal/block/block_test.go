package block

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"repro/internal/disk"
)

func newServer(t *testing.T, blocks int) *Server {
	t.Helper()
	return NewServer(disk.MustNew(disk.Geometry{Blocks: blocks, BlockSize: 256}))
}

func TestAllocReadWriteFree(t *testing.T) {
	s := newServer(t, 32)
	const acct Account = 1

	n, err := s.Alloc(acct, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if n == NilNum {
		t.Fatal("allocated NilNum")
	}
	got, err := s.Read(acct, n)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:5], []byte("hello")) {
		t.Fatalf("read %q", got[:5])
	}
	if err := s.Write(acct, n, []byte("world")); err != nil {
		t.Fatal(err)
	}
	got, _ = s.Read(acct, n)
	if !bytes.Equal(got[:5], []byte("world")) {
		t.Fatalf("read %q after write", got[:5])
	}
	if err := s.Free(acct, n); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(acct, n); !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("read of freed block err = %v", err)
	}
}

func TestBlockZeroNeverAllocated(t *testing.T) {
	s := newServer(t, 8)
	seen := make(map[Num]bool)
	for {
		n, err := s.Alloc(1, nil)
		if errors.Is(err, ErrNoSpace) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if n == NilNum {
			t.Fatal("allocated the nil block")
		}
		if seen[n] {
			t.Fatalf("block %d allocated twice", n)
		}
		seen[n] = true
	}
	if len(seen) != 7 {
		t.Fatalf("allocated %d blocks from 8-block disk, want 7", len(seen))
	}
}

func TestProtectionBetweenAccounts(t *testing.T) {
	s := newServer(t, 16)
	n, err := s.Alloc(1, []byte("private"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(2, n); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("foreign read err = %v", err)
	}
	if err := s.Write(2, n, []byte("x")); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("foreign write err = %v", err)
	}
	if err := s.Free(2, n); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("foreign free err = %v", err)
	}
	if err := s.Lock(2, n); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("foreign lock err = %v", err)
	}
}

func TestLockUnlock(t *testing.T) {
	s := newServer(t, 16)
	n, _ := s.Alloc(1, nil)

	if err := s.Lock(1, n); err != nil {
		t.Fatal(err)
	}
	if err := s.Lock(1, n); !errors.Is(err, ErrLocked) {
		t.Fatalf("double lock err = %v", err)
	}
	if err := s.Unlock(1, n); err != nil {
		t.Fatal(err)
	}
	if err := s.Unlock(1, n); !errors.Is(err, ErrNotLocked) {
		t.Fatalf("double unlock err = %v", err)
	}
	st := s.Stats()
	if st.Locks != 1 || st.Unlocks != 1 || st.LockConflicts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFreeClearsLock(t *testing.T) {
	s := newServer(t, 16)
	n, _ := s.Alloc(1, nil)
	s.Lock(1, n)
	s.Free(1, n)
	// Block reused by a new allocation must not inherit the lock.
	var n2 Num
	for {
		m, err := s.Alloc(1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if m == n {
			n2 = m
			break
		}
	}
	if err := s.Lock(1, n2); err != nil {
		t.Fatalf("reused block inherited lock: %v", err)
	}
}

func TestRecoverListsOwnedBlocks(t *testing.T) {
	s := newServer(t, 32)
	var mine []Num
	for i := 0; i < 5; i++ {
		n, err := s.Alloc(7, nil)
		if err != nil {
			t.Fatal(err)
		}
		mine = append(mine, n)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Alloc(8, nil); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Recover(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("recovered %d blocks, want 5", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("recover list not sorted")
		}
	}
	want := make(map[Num]bool)
	for _, n := range mine {
		want[n] = true
	}
	for _, n := range got {
		if !want[n] {
			t.Fatalf("recovered foreign block %d", n)
		}
	}
}

func TestNoSpace(t *testing.T) {
	s := newServer(t, 2) // one allocatable block (0 reserved)
	if _, err := s.Alloc(1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc(1, nil); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
}

func TestAllocAfterFreeReusesSpace(t *testing.T) {
	s := newServer(t, 2)
	n, _ := s.Alloc(1, nil)
	s.Free(1, n)
	m, err := s.Alloc(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m != n {
		t.Fatalf("reallocated %d, want %d", m, n)
	}
}

func TestWithLockCriticalSection(t *testing.T) {
	s := newServer(t, 16)
	n, _ := s.Alloc(1, []byte{0})

	// 20 goroutines increment the first byte under WithLock, retrying
	// when the lock is held: the final count must be exact.
	var wg sync.WaitGroup
	for g := 0; g < 20; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				err := WithLock(s, 1, n, func(data []byte) ([]byte, error) {
					data[0]++
					return data, nil
				})
				if err == nil {
					return
				}
				if !errors.Is(err, ErrLocked) {
					t.Errorf("WithLock: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, _ := s.Read(1, n)
	if got[0] != 20 {
		t.Fatalf("counter = %d, want 20 (critical section violated)", got[0])
	}
}

func TestWithLockSkipWrite(t *testing.T) {
	s := newServer(t, 16)
	n, _ := s.Alloc(1, []byte("orig"))
	err := WithLock(s, 1, n, func(data []byte) ([]byte, error) {
		return nil, nil // examine only
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := s.Read(1, n)
	if !bytes.Equal(got[:4], []byte("orig")) {
		t.Fatal("WithLock with nil result wrote the block")
	}
	// Lock must have been released.
	if err := s.Lock(1, n); err != nil {
		t.Fatalf("lock leaked: %v", err)
	}
}

func TestWithLockPropagatesBodyError(t *testing.T) {
	s := newServer(t, 16)
	n, _ := s.Alloc(1, nil)
	boom := errors.New("boom")
	if err := WithLock(s, 1, n, func([]byte) ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if err := s.Lock(1, n); err != nil {
		t.Fatalf("lock leaked after body error: %v", err)
	}
}

func TestRestoreAndOwners(t *testing.T) {
	s := newServer(t, 16)
	n1, _ := s.Alloc(1, []byte("a"))
	n2, _ := s.Alloc(2, []byte("b"))
	owners := s.Owners()
	if owners[n1] != 1 || owners[n2] != 2 {
		t.Fatalf("owners = %v", owners)
	}

	s2 := NewServer(s.Disk())
	s2.Restore(owners)
	got, err := s2.Read(1, n1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 'a' {
		t.Fatal("restored server lost data")
	}
	if _, err := s2.Read(1, n2); !errors.Is(err, ErrNotOwner) {
		t.Fatal("restored server lost ownership")
	}
}

func TestClearLocks(t *testing.T) {
	s := newServer(t, 16)
	n, _ := s.Alloc(1, nil)
	s.Lock(1, n)
	s.ClearLocks()
	if err := s.Lock(1, n); err != nil {
		t.Fatalf("lock after ClearLocks: %v", err)
	}
}

func TestDiskErrorSurfacesAndReleasesBlock(t *testing.T) {
	s := newServer(t, 16)
	s.Disk().Crash()
	if _, err := s.Alloc(1, []byte("x")); !errors.Is(err, disk.ErrOffline) {
		t.Fatalf("alloc on crashed disk err = %v", err)
	}
	s.Disk().Repair()
	// The failed allocation must not leak the block.
	if s.InUse() != 0 {
		t.Fatalf("InUse = %d after failed alloc, want 0", s.InUse())
	}
}

func TestCapacityAndInUse(t *testing.T) {
	s := newServer(t, 16)
	if s.Capacity() != 15 {
		t.Fatalf("Capacity = %d, want 15", s.Capacity())
	}
	s.Alloc(1, nil)
	s.Alloc(1, nil)
	if s.InUse() != 2 {
		t.Fatalf("InUse = %d, want 2", s.InUse())
	}
}

func TestConcurrentAllocDistinct(t *testing.T) {
	s := newServer(t, 256)
	var mu sync.Mutex
	seen := make(map[Num]bool)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				n, err := s.Alloc(1, nil)
				if err != nil {
					t.Errorf("alloc: %v", err)
					return
				}
				mu.Lock()
				if seen[n] {
					t.Errorf("block %d allocated twice", n)
				}
				seen[n] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}
