package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(10 * time.Microsecond)  // below the first bound
	h.Observe(50 * time.Microsecond)  // exactly on the first bound
	h.Observe(300 * time.Microsecond) // between 0.25ms and 0.5ms
	h.Observe(2 * time.Second)        // beyond every bound: +Inf

	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count %d, want 4", s.Count)
	}
	if got := s.Buckets[0].Count; got != 2 {
		t.Fatalf("le=0.00005 bucket %d, want 2 (exact bound counts as le)", got)
	}
	last := s.Buckets[len(s.Buckets)-1]
	if !math.IsInf(last.UpperBound, 1) || last.Count != 4 {
		t.Fatalf("+Inf bucket %+v, want cumulative 4", last)
	}
	// Cumulative monotonicity.
	prev := uint64(0)
	for _, b := range s.Buckets {
		if b.Count < prev {
			t.Fatalf("buckets not cumulative: %v", s.Buckets)
		}
		prev = b.Count
	}
	if s.SumSeconds < 2.0 || s.SumSeconds > 2.01 {
		t.Fatalf("sum %v, want ~2.00036", s.SumSeconds)
	}
}

func TestHistogramCustomBounds(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8)
	for _, v := range []float64{0.5, 1, 3, 100} {
		h.ObserveValue(v)
	}
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count %d, want 4", s.Count)
	}
	if got := len(s.Buckets); got != 5 {
		t.Fatalf("%d buckets for 4 bounds, want 5 (incl. +Inf)", got)
	}
	// le=1 holds 0.5 and the exact bound 1; le=4 adds 3; +Inf adds 100.
	if got := s.Buckets[0].Count; got != 2 {
		t.Fatalf("le=1 bucket %d, want 2", got)
	}
	if got := s.Buckets[2].Count; got != 3 {
		t.Fatalf("le=4 bucket %d, want 3", got)
	}
	last := s.Buckets[len(s.Buckets)-1]
	if !math.IsInf(last.UpperBound, 1) || last.Count != 4 {
		t.Fatalf("+Inf bucket %+v, want cumulative 4", last)
	}
	if s.SumSeconds != 104.5 {
		t.Fatalf("sum %v, want 104.5", s.SumSeconds)
	}
	// The zero value keeps the latency bounds: 14 finite + Inf.
	var lat Histogram
	lat.ObserveValue(1)
	if got := len(lat.Snapshot().Buckets); got != 15 {
		t.Fatalf("zero-value histogram has %d buckets, want 15", got)
	}
}

func TestExpositionFormat(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	var sb strings.Builder
	WriteHelp(&sb, "afs_commit_seconds", "histogram", "Commit path latency.")
	h.Snapshot().Write(&sb, "afs_commit_seconds", nil)
	WriteSample(&sb, "afs_block_reads_total", map[string]string{"shard": "0"}, 42)
	out := sb.String()
	for _, want := range []string{
		"# HELP afs_commit_seconds Commit path latency.",
		"# TYPE afs_commit_seconds histogram",
		`afs_commit_seconds_bucket{le="0.001"} 1`,
		`afs_commit_seconds_bucket{le="+Inf"} 1`,
		"afs_commit_seconds_count 1",
		`afs_block_reads_total{shard="0"} 42`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
