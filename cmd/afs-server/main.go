// Command afs-server runs an Amoeba File Service on TCP: any number of
// logical file server processes sharing one file table and one block
// store — either an in-process disk or a remote afs-block service
// mounted with -block PORT@ADDR.
//
// The service line printed on stdout (comma-separated PORT@ADDR pairs,
// one per file server, then the service capability secret is kept
// in-process) is what the afs CLI consumes via -servers.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/block"
	"repro/internal/capability"
	"repro/internal/disk"
	"repro/internal/file"
	"repro/internal/gc"
	"repro/internal/rpc"
	"repro/internal/server"
	"repro/internal/version"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:0", "TCP address to listen on")
		servers  = flag.Int("servers", 2, "number of file server processes")
		blocks   = flag.Int("blocks", 1<<16, "blocks of the in-process disk (ignored with -block)")
		bsize    = flag.Int("bsize", 4096, "block size of the in-process disk (ignored with -block)")
		mount    = flag.String("block", "", "remote block service as PORT@ADDR (from afs-block)")
		gcEvery  = flag.Duration("gc", 5*time.Second, "garbage collection interval (0 disables)")
		gcRetain = flag.Int("retain", 4, "committed versions retained per file")
	)
	flag.Parse()

	var store block.Store
	if *mount != "" {
		port, addr, err := splitMount(*mount)
		if err != nil {
			log.Fatal(err)
		}
		res := rpc.NewResolver()
		res.Set(port, addr)
		remote, err := block.Dial(rpc.NewTCPClient(res), port)
		if err != nil {
			log.Fatalf("mount %s: %v", *mount, err)
		}
		store = remote
		log.Printf("mounted remote block service %s", *mount)
	} else {
		d, err := disk.New(disk.Geometry{Blocks: *blocks, BlockSize: *bsize})
		if err != nil {
			log.Fatal(err)
		}
		store = block.NewServer(d)
	}

	sh := server.NewShared(store, 1)
	// If the store already holds a file system (remote block server
	// that survived us), rebuild the table from it.
	if *mount != "" {
		st := version.NewStore(store, sh.Acct)
		if t, err := file.Rebuild(st); err == nil && t.Len() > 0 {
			for obj, e := range t.Entries() {
				sh.Table.Put(obj, e)
			}
			log.Printf("recovered %d files from block service", t.Len())
		}
	}

	tcp, err := rpc.NewTCPServer(*listen)
	if err != nil {
		log.Fatal(err)
	}
	var srvs []*server.Server
	var endpoints []string
	for i := 0; i < *servers; i++ {
		s := server.New(sh, nil)
		tcp.Register(s.Port(), s.Handler())
		srvs = append(srvs, s)
		endpoints = append(endpoints, fmt.Sprintf("%s@%s", s.Port(), tcp.Addr()))
	}
	fmt.Println(strings.Join(endpoints, ","))
	log.Printf("file service up: %d servers at %s", *servers, tcp.Addr())

	stop := make(chan struct{})
	if *gcEvery > 0 {
		col := gc.New(version.NewStore(store, sh.Acct), sh.Table, *gcRetain, func() []block.Num {
			var out []block.Num
			for _, s := range srvs {
				out = append(out, s.LiveVersions()...)
			}
			return out
		})
		go col.Run(*gcEvery, stop, nil)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	close(stop)
	tcp.Close()
	log.Printf("file service down: %d files", sh.Table.Len())
}

// splitMount parses PORT@ADDR.
func splitMount(s string) (capability.Port, string, error) {
	i := strings.IndexByte(s, '@')
	if i < 0 {
		return 0, "", fmt.Errorf("mount %q: want PORT@ADDR", s)
	}
	var p uint64
	if _, err := fmt.Sscanf(s[:i], "%x", &p); err != nil {
		return 0, "", fmt.Errorf("mount %q: bad port: %w", s, err)
	}
	return capability.Port(p), s[i+1:], nil
}
