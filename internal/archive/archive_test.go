package archive_test

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/archive"
	"repro/internal/block"
	"repro/internal/blocktest"
	"repro/internal/disk"
)

// newPair builds an in-memory reference server and an archive store of
// the same capacity and facade block size, so the contract harness can
// drive both in lockstep over the write-once operation subset.
func newPair(t *testing.T, capacity, blockSize int) (*block.Server, *archive.Store) {
	t.Helper()
	ref := block.NewServer(disk.MustNew(disk.Geometry{Blocks: capacity + 1, BlockSize: blockSize}))
	backing := block.NewServer(disk.MustNew(disk.Geometry{Blocks: capacity + 1, BlockSize: blockSize + archive.FrameOverhead}))
	dut, err := archive.New(backing, 1)
	if err != nil {
		t.Fatal(err)
	}
	return ref, dut
}

func wantErr(sentinel error) func(*testing.T, error) {
	return func(t *testing.T, err error) {
		t.Helper()
		if !errors.Is(err, sentinel) {
			t.Fatalf("err = %v, want %v", err, sentinel)
		}
	}
}

// TestArchiveContractTable runs the write-once subset of the contract
// script against the in-memory reference: everything the file-service
// layers can observe short of mutation must be indistinguishable.
func TestArchiveContractTable(t *testing.T) {
	ref, dut := newPair(t, 64, 128)
	blocktest.RunScript(t, ref, dut, []blocktest.Op{
		{Op: "alloc", Acct: 1, Data: "alpha"},
		{Op: "alloc", Acct: 1, Data: "beta"},
		{Op: "alloc", Acct: 1, Data: "gamma"},
		{Op: "read", Acct: 1, N: 0},
		{Op: "read", Acct: 2, N: 0, Check: wantErr(block.ErrNotOwner)},
		{Op: "read", Acct: 1, N: -1, Check: wantErr(block.ErrNotAllocated)},
		{Op: "rewrite", Acct: 1, N: 0},
		{Op: "rewrite", Acct: 1, N: 9, Check: wantErr(block.ErrNotAllocated)},
		{Op: "read", Acct: 1, N: 0},
		{Op: "lock", Acct: 1, N: 1},
		{Op: "lock", Acct: 1, N: 1, Check: wantErr(block.ErrLocked)},
		{Op: "lock", Acct: 2, N: 1, Check: wantErr(block.ErrNotOwner)},
		{Op: "unlock", Acct: 1, N: 1},
		{Op: "unlock", Acct: 1, N: 1, Check: wantErr(block.ErrNotLocked)},
		{Op: "readmulti", Acct: 1, N: 0},
		{Op: "allocmulti", Acct: 1, Data: "am"},
		{Op: "recover", Acct: 1},
		{Op: "recover", Acct: 2},
	})
}

// TestArchiveContractExhaustion checks ErrNoSpace classifies the same
// through the facade (unique payloads — duplicate content would dedup
// on the archive and diverge from the reference by design).
func TestArchiveContractExhaustion(t *testing.T) {
	ref, dut := newPair(t, 6, 64)
	var ops []blocktest.Op
	for i := 0; i < 6; i++ {
		ops = append(ops, blocktest.Op{Op: "alloc", Acct: 1, Data: fmt.Sprint(i)})
	}
	ops = append(ops,
		blocktest.Op{Op: "alloc", Acct: 1, Data: "over", Check: wantErr(block.ErrNoSpace)},
		blocktest.Op{Op: "recover", Acct: 1},
	)
	blocktest.RunScript(t, ref, dut, ops)
}

// TestArchiveWriteOnce drives the write-once suite: dedup on identical
// Alloc, idempotent rewrite, and refusal of every destructive op.
func TestArchiveWriteOnce(t *testing.T) {
	_, dut := newPair(t, 16, 64)
	blocktest.WriteOnceSuite(t, "archive", dut, archive.ErrImmutable)
}

// FuzzArchiveContract feeds random write-once scripts to the reference
// store and the archive facade in lockstep.
func FuzzArchiveContract(f *testing.F) {
	for _, seed := range blocktest.FuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, script []byte) {
		ref, dut := newPair(t, 600, 64)
		blocktest.RunScript(t, ref, dut, blocktest.WriteOnceOps(script))
	})
}

// TestArchiveDedupAccounting checks the content-addressed bookkeeping:
// identical puts collapse into one stored block and the stats say so.
func TestArchiveDedupAccounting(t *testing.T) {
	_, st := newPair(t, 16, 64)
	payload := []byte("the same content twice")
	n1, hit1, err := st.Put(1, archive.KindData, payload)
	if err != nil || hit1 {
		t.Fatalf("first put: n=%d hit=%v err=%v", n1, hit1, err)
	}
	n2, hit2, err := st.Put(1, archive.KindData, payload)
	if err != nil || !hit2 || n2 != n1 {
		t.Fatalf("second put: n=%d hit=%v err=%v, want dedup onto %d", n2, hit2, err, n1)
	}
	// The kind is part of the address: same payload, different kind,
	// different block.
	n3, hit3, err := st.Put(1, archive.KindPointer, payload)
	if err != nil || hit3 || n3 == n1 {
		t.Fatalf("cross-kind put: n=%d hit=%v err=%v", n3, hit3, err)
	}
	stats := st.Stats()
	if stats.Puts != 3 || stats.Stored != 2 || stats.DedupHits != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.BytesStored >= stats.BytesLogical {
		t.Fatalf("dedup saved no bytes: logical %d, stored %d", stats.BytesLogical, stats.BytesStored)
	}
	if got, err := st.Read(1, n1); err != nil || !bytes.Equal(got[:len(payload)], payload) {
		t.Fatalf("read back: %q, %v", got, err)
	}
}

// TestArchiveCorruptRead flips one payload byte underneath the facade
// and requires the read to fail with block.ErrCorrupt naming the exact
// block.
func TestArchiveCorruptRead(t *testing.T) {
	_, st := newPair(t, 16, 64)
	n, err := st.Alloc(1, []byte("soon to be damaged"))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := st.Backing().Read(1, n)
	if err != nil {
		t.Fatal(err)
	}
	raw[archive.FrameOverhead] ^= 0x01
	if err := st.Backing().Write(1, n, raw); err != nil {
		t.Fatal(err)
	}
	_, err = st.Read(1, n)
	if !errors.Is(err, block.ErrCorrupt) {
		t.Fatalf("read of damaged block: %v, want ErrCorrupt", err)
	}
	if want := fmt.Sprintf("block %d", n); !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name %q", err, want)
	}
	if st.Stats().CorruptReads != 1 {
		t.Fatalf("corrupt reads = %d, want 1", st.Stats().CorruptReads)
	}
}

// TestArchiveReopen rebuilds the indexes from the backing store alone:
// content addresses, dedup, and the snapshot log must all survive.
func TestArchiveReopen(t *testing.T) {
	backing := block.NewServer(disk.MustNew(disk.Geometry{Blocks: 32, BlockSize: 64 + archive.FrameOverhead}))
	st, err := archive.New(backing, 1)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("durable content")
	n, err := st.Alloc(1, payload)
	if err != nil {
		t.Fatal(err)
	}
	e := archive.Entry{Object: 7, Seq: 1, Root: n, Score: archive.ScoreOf(archive.KindRaw, payload)}
	if err := st.AppendSnapshot(1, e); err != nil {
		t.Fatal(err)
	}
	// The same entry twice dedups into one record.
	if err := st.AppendSnapshot(1, e); err != nil {
		t.Fatal(err)
	}

	st2, err := archive.New(backing, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := st2.Read(1, n); err != nil || !bytes.Equal(got[:len(payload)], payload) {
		t.Fatalf("read after reopen: %q, %v", got, err)
	}
	again, err := st2.Alloc(1, payload)
	if err != nil || again != n {
		t.Fatalf("dedup after reopen: block %d, %v, want %d", again, err, n)
	}
	snaps := st2.Snapshots(7)
	if len(snaps) != 1 || snaps[0] != e {
		t.Fatalf("snapshot log after reopen: %+v, want [%+v]", snaps, e)
	}
	if _, ok := st2.Snapshot(7, 2); ok {
		t.Fatal("phantom snapshot after reopen")
	}
	if seq := st2.LastSeq(7); seq != 1 {
		t.Fatalf("last seq = %d, want 1", seq)
	}
}

// TestPutConcurrentSameContent races many puts of one payload: the
// reservation protocol must converge them on a single stored block —
// one winner stores, every loser reports a dedup hit — without holding
// the index lock across the backing allocation.
func TestPutConcurrentSameContent(t *testing.T) {
	_, st := newPair(t, 64, 128)
	const n = 16
	payload := []byte("raced content")
	var wg sync.WaitGroup
	got := make([]block.Num, n)
	hits := make([]bool, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], hits[i], errs[i] = st.Put(1, archive.KindRaw, payload)
		}(i)
	}
	wg.Wait()
	stores := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("put %d: %v", i, errs[i])
		}
		if got[i] != got[0] {
			t.Fatalf("put %d landed on block %d, put 0 on %d", i, got[i], got[0])
		}
		if !hits[i] {
			stores++
		}
	}
	if stores != 1 {
		t.Fatalf("%d puts stored, want exactly 1", stores)
	}
	s := st.Stats()
	if s.Stored != 1 || s.DedupHits != n-1 {
		t.Fatalf("stats = %+v, want 1 stored, %d dedup hits", s, n-1)
	}
}

// TestRefreshSeesSiblingAppends opens two stores over one backing — two
// live server processes sharing an archive — and requires Refresh to
// pick up blocks and snapshot records the sibling appended after this
// store's index was built.
func TestRefreshSeesSiblingAppends(t *testing.T) {
	backing := block.NewServer(disk.MustNew(disk.Geometry{Blocks: 64, BlockSize: 128 + archive.FrameOverhead}))
	a, err := archive.New(backing, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := archive.New(backing, 1)
	if err != nil {
		t.Fatal(err)
	}

	payload := []byte("shared content")
	n, err := a.Alloc(1, payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AppendSnapshot(1, archive.Entry{Object: 7, Seq: 1, Root: n}); err != nil {
		t.Fatal(err)
	}

	// B's stale index misses both until it refreshes.
	if _, ok := b.Lookup(archive.ScoreOf(archive.KindRaw, pad(payload, b.BlockSize()))); ok {
		t.Fatal("stale index already sees the sibling's block")
	}
	if seq := b.LastSeq(7); seq != 0 {
		t.Fatalf("stale LastSeq = %d, want 0", seq)
	}
	if err := b.Refresh(); err != nil {
		t.Fatal(err)
	}
	if got, ok := b.Lookup(archive.ScoreOf(archive.KindRaw, pad(payload, b.BlockSize()))); !ok || got != n {
		t.Fatalf("Lookup after refresh = %d, %v, want %d", got, ok, n)
	}
	if seq := b.LastSeq(7); seq != 1 {
		t.Fatalf("LastSeq after refresh = %d, want 1", seq)
	}
	// A re-put on B dedups onto A's block instead of storing again.
	stored := b.Stats().Stored
	again, err := b.Alloc(1, payload)
	if err != nil || again != n {
		t.Fatalf("alloc after refresh: block %d, %v, want %d", again, err, n)
	}
	if b.Stats().Stored != stored {
		t.Fatal("refresh-visible content stored a duplicate block")
	}
}

// pad mirrors the store's zero-padding so tests can compute the score
// of a stored (padded) payload.
func pad(p []byte, size int) []byte {
	if len(p) >= size {
		return p
	}
	out := make([]byte, size)
	copy(out, p)
	return out
}
