package version

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/block"
	"repro/internal/capability"
	"repro/internal/disk"
	"repro/internal/page"
)

const testAcct block.Account = 1

func newStore(t *testing.T) *Store {
	t.Helper()
	d := disk.MustNew(disk.Geometry{Blocks: 4096, BlockSize: 1024})
	return NewStore(block.NewServer(d), testAcct)
}

func caps(t *testing.T) (capability.Capability, capability.Capability, *capability.Factory) {
	t.Helper()
	f := capability.NewFactory(capability.NewPort().Public())
	return f.Register(1), f.Register(2), f
}

// buildFile creates a file whose root has three children, the middle one
// with two children of its own:
//
//	root ── 0: "child0"
//	     ── 1: "child1" ── 0: "gc0"
//	     │               └ 1: "gc1"
//	     └ 2: "child2"
func buildFile(t *testing.T, s *Store) *Tree {
	t.Helper()
	fc, vc, _ := caps(t)
	tr, err := CreateFile(s, fc, vc, []byte("rootdata"))
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range []string{"child0", "child1", "child2"} {
		if err := tr.InsertPage(page.RootPath, i, []byte(d)); err != nil {
			t.Fatal(err)
		}
	}
	for i, d := range []string{"gc0", "gc1"} {
		if err := tr.InsertPage(page.Path{1}, i, []byte(d)); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestCreateFileAndReadRoot(t *testing.T) {
	s := newStore(t)
	fc, vc, _ := caps(t)
	tr, err := CreateFile(s, fc, vc, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	data, nrefs, err := tr.ReadPage(page.RootPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello" || nrefs != 0 {
		t.Fatalf("data=%q nrefs=%d", data, nrefs)
	}
	vp, err := tr.VersionPage()
	if err != nil {
		t.Fatal(err)
	}
	if !vp.IsVersion || vp.FileCap != fc || vp.VersionCap != vc {
		t.Fatal("version page header wrong")
	}
	if vp.CommitRef != block.NilNum || vp.BaseRef != block.NilNum {
		t.Fatal("fresh file must have nil base and commit refs")
	}
}

func TestTreeConstructionAndReads(t *testing.T) {
	s := newStore(t)
	tr := buildFile(t, s)
	cases := []struct {
		path  page.Path
		data  string
		nrefs int
	}{
		{page.RootPath, "rootdata", 3},
		{page.Path{0}, "child0", 0},
		{page.Path{1}, "child1", 2},
		{page.Path{1, 0}, "gc0", 0},
		{page.Path{1, 1}, "gc1", 0},
		{page.Path{2}, "child2", 0},
	}
	for _, c := range cases {
		data, nrefs, err := tr.ReadPage(c.path)
		if err != nil {
			t.Fatalf("%s: %v", c.path, err)
		}
		if string(data) != c.data || nrefs != c.nrefs {
			t.Fatalf("%s: data=%q nrefs=%d, want %q %d", c.path, data, nrefs, c.data, c.nrefs)
		}
	}
}

func TestPathErrors(t *testing.T) {
	s := newStore(t)
	tr := buildFile(t, s)
	if _, _, err := tr.ReadPage(page.Path{9}); !errors.Is(err, ErrBadPath) {
		t.Fatalf("out of range read err = %v", err)
	}
	if _, _, err := tr.ReadPage(page.Path{0, 0}); !errors.Is(err, ErrBadPath) {
		t.Fatalf("descent into leaf err = %v", err)
	}
	if err := tr.MakeHole(page.RootPath, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr.ReadPage(page.Path{2}); !errors.Is(err, ErrHole) {
		t.Fatalf("read through hole err = %v", err)
	}
}

func TestVersionSharesTreeUntilWritten(t *testing.T) {
	s := newStore(t)
	base := buildFile(t, s)
	_, vc2, _ := caps(t)
	v2, err := CreateVersion(s, base.Root, vc2)
	if err != nil {
		t.Fatal(err)
	}

	// Before any access the new version's page tree is fully shared:
	// only the version page itself is private.
	priv, err := v2.PrivateBlocks()
	if err != nil {
		t.Fatal(err)
	}
	if len(priv) != 1 || !priv[v2.Root] {
		t.Fatalf("fresh version owns %d blocks, want only its version page", len(priv))
	}

	// Reads are identical to the base.
	data, _, err := v2.ReadPage(page.Path{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "gc1" {
		t.Fatalf("read %q", data)
	}
}

func TestCopyOnWriteLeavesBaseIntact(t *testing.T) {
	s := newStore(t)
	base := buildFile(t, s)
	_, vc2, _ := caps(t)
	v2, err := CreateVersion(s, base.Root, vc2)
	if err != nil {
		t.Fatal(err)
	}
	if err := v2.WritePage(page.Path{1, 0}, []byte("GC0-NEW")); err != nil {
		t.Fatal(err)
	}
	// New version sees the new data.
	data, _, _ := v2.ReadPage(page.Path{1, 0})
	if string(data) != "GC0-NEW" {
		t.Fatalf("v2 reads %q", data)
	}
	// Base still sees the old data ("leaving the old page intact").
	data, _, _ = base.ReadPage(page.Path{1, 0})
	if string(data) != "gc0" {
		t.Fatalf("base reads %q after v2 write", data)
	}
}

func TestWriteCopiesPathOnce(t *testing.T) {
	s := newStore(t)
	base := buildFile(t, s)
	_, vc2, _ := caps(t)
	v2, _ := CreateVersion(s, base.Root, vc2)

	if err := v2.WritePage(page.Path{1, 0}, []byte("a")); err != nil {
		t.Fatal(err)
	}
	priv1, _ := v2.PrivateBlocks()
	// Private: version page + child1 copy + gc0 copy.
	if len(priv1) != 3 {
		t.Fatalf("after first write: %d private blocks, want 3", len(priv1))
	}

	// Writing the same page again must not copy anything more ("a page
	// is only copied once; after it has been copied for writing, it can
	// be written in place").
	if err := v2.WritePage(page.Path{1, 0}, []byte("b")); err != nil {
		t.Fatal(err)
	}
	priv2, _ := v2.PrivateBlocks()
	if len(priv2) != len(priv1) {
		t.Fatalf("second write grew private set %d -> %d", len(priv1), len(priv2))
	}
	for b := range priv1 {
		if !priv2[b] {
			t.Fatal("private set changed between writes")
		}
	}
}

func TestReadShadowsPath(t *testing.T) {
	s := newStore(t)
	base := buildFile(t, s)
	_, vc2, _ := caps(t)
	v2, _ := CreateVersion(s, base.Root, vc2)

	// Reading gc1 must shadow the pages on the way (flag initialisation
	// requires changing them): child1 and gc1 become private copies.
	if _, _, err := v2.ReadPage(page.Path{1, 1}); err != nil {
		t.Fatal(err)
	}
	priv, _ := v2.PrivateBlocks()
	if len(priv) != 3 {
		t.Fatalf("read shadowed %d blocks, want 3 (root+child1+gc1)", len(priv))
	}
}

func TestFlagTracking(t *testing.T) {
	s := newStore(t)
	base := buildFile(t, s)
	_, vc2, _ := caps(t)
	v2, _ := CreateVersion(s, base.Root, vc2)

	if _, _, err := v2.ReadPage(page.Path{1, 0}); err != nil {
		t.Fatal(err)
	}
	if err := v2.WritePage(page.Path{0}, []byte("w")); err != nil {
		t.Fatal(err)
	}

	vp, _ := v2.VersionPage()
	// Root searched (descended twice), and copied by construction.
	if !vp.RootFlags.Accessed() || vp.RootFlags&page.FlagS == 0 {
		t.Fatalf("root flags = %s, want C and S", vp.RootFlags)
	}
	// child1: searched on the way to gc0, not read or written itself.
	r1 := vp.Refs[1]
	if r1.Flags&page.FlagS == 0 || r1.Flags&page.FlagR != 0 || r1.Flags&page.FlagW != 0 {
		t.Fatalf("child1 flags = %s, want S only (plus C)", r1.Flags)
	}
	// child0: written, not read, not searched.
	r0 := vp.Refs[0]
	if r0.Flags&page.FlagW == 0 || r0.Flags&page.FlagR != 0 || r0.Flags&page.FlagS != 0 {
		t.Fatalf("child0 flags = %s, want W only (plus C)", r0.Flags)
	}
	// child2: untouched, still shared.
	if vp.Refs[2].Flags != 0 {
		t.Fatalf("child2 flags = %s, want none", vp.Refs[2].Flags)
	}
	// gc0: read.
	c1, err := s.ReadPage(r1.Block)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Refs[0].Flags&page.FlagR == 0 {
		t.Fatalf("gc0 flags = %s, want R", c1.Refs[0].Flags)
	}
	if c1.Refs[1].Flags != 0 {
		t.Fatalf("gc1 flags = %s, want none", c1.Refs[1].Flags)
	}
}

func TestParentOfWrittenPageNotWritten(t *testing.T) {
	// "the parent page of a written page is not considered written or
	// modified, although, strictly speaking, it has changed."
	s := newStore(t)
	base := buildFile(t, s)
	_, vc2, _ := caps(t)
	v2, _ := CreateVersion(s, base.Root, vc2)
	if err := v2.WritePage(page.Path{1, 0}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	vp, _ := v2.VersionPage()
	r1 := vp.Refs[1]
	if r1.Flags&(page.FlagW|page.FlagM) != 0 {
		t.Fatalf("child1 flags = %s: parent of written page must not be W or M", r1.Flags)
	}
	if r1.Flags&page.FlagS == 0 {
		t.Fatalf("child1 flags = %s: descent must set S", r1.Flags)
	}
}

func TestInsertRemoveSetsM(t *testing.T) {
	s := newStore(t)
	base := buildFile(t, s)
	_, vc2, _ := caps(t)
	v2, _ := CreateVersion(s, base.Root, vc2)

	if err := v2.InsertPage(page.Path{1}, 0, []byte("new")); err != nil {
		t.Fatal(err)
	}
	vp, _ := v2.VersionPage()
	r1 := vp.Refs[1]
	if r1.Flags&page.FlagM == 0 || r1.Flags&page.FlagS == 0 {
		t.Fatalf("child1 flags = %s, want M (implying S)", r1.Flags)
	}
	// Table shifted: old gc0 now at index 1.
	data, _, err := v2.ReadPage(page.Path{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "gc0" {
		t.Fatalf("after insert, {1,1} = %q, want gc0", data)
	}
	data, _, _ = v2.ReadPage(page.Path{1, 0})
	if string(data) != "new" {
		t.Fatalf("after insert, {1,0} = %q", data)
	}

	if err := v2.RemovePage(page.Path{1}, 0); err != nil {
		t.Fatal(err)
	}
	data, _, _ = v2.ReadPage(page.Path{1, 0})
	if string(data) != "gc0" {
		t.Fatalf("after remove, {1,0} = %q, want gc0", data)
	}
	// Base unaffected by the new version's structural changes.
	data, _, _ = base.ReadPage(page.Path{1, 0})
	if string(data) != "gc0" {
		t.Fatalf("base {1,0} = %q", data)
	}
}

func TestHoleLifecycle(t *testing.T) {
	s := newStore(t)
	tr := buildFile(t, s)

	if err := tr.MakeHole(page.RootPath, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr.ReadPage(page.Path{1}); !errors.Is(err, ErrHole) {
		t.Fatal("hole readable")
	}
	if err := tr.FillHole(page.RootPath, 0, nil); !errors.Is(err, ErrNotHole) {
		t.Fatal("FillHole on live ref accepted")
	}
	if err := tr.FillHole(page.RootPath, 1, []byte("refill")); err != nil {
		t.Fatal(err)
	}
	data, _, err := tr.ReadPage(page.Path{1})
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "refill" {
		t.Fatalf("refilled = %q", data)
	}
	if err := tr.RemoveHole(page.RootPath, 1); !errors.Is(err, ErrNotHole) {
		t.Fatal("RemoveHole removed a live ref")
	}
	if err := tr.MakeHole(page.RootPath, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.RemoveHole(page.RootPath, 1); err != nil {
		t.Fatal(err)
	}
	// Table shrunk: index 1 is now the old child2.
	data, _, _ = tr.ReadPage(page.Path{1})
	if string(data) != "child2" {
		t.Fatalf("after hole removal, {1} = %q", data)
	}
}

func TestMoveSubtree(t *testing.T) {
	s := newStore(t)
	tr := buildFile(t, s)

	// Make room: a hole at root index 2 (dropping child2), then move
	// child1's subtree there.
	if err := tr.MakeHole(page.RootPath, 2); err != nil {
		t.Fatal(err)
	}
	if err := tr.MoveSubtree(page.RootPath, 1, page.RootPath, 2); err != nil {
		t.Fatal(err)
	}
	// Old location is a hole.
	if _, _, err := tr.ReadPage(page.Path{1}); !errors.Is(err, ErrHole) {
		t.Fatal("source not detached")
	}
	// Subtree intact at the new location.
	data, _, err := tr.ReadPage(page.Path{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "gc0" {
		t.Fatalf("moved subtree {2,0} = %q", data)
	}
}

func TestMoveSubtreeUnderItselfRefused(t *testing.T) {
	s := newStore(t)
	tr := buildFile(t, s)
	if err := tr.MoveSubtree(page.RootPath, 1, page.Path{1, 0}, 0); !errors.Is(err, ErrBadPath) {
		t.Fatalf("err = %v, want ErrBadPath", err)
	}
}

func TestSplitPage(t *testing.T) {
	s := newStore(t)
	fc, vc, _ := caps(t)
	tr, err := CreateFile(s, fc, vc, []byte("headtail"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.SplitPage(page.RootPath, 4); err != nil {
		t.Fatal(err)
	}
	data, nrefs, err := tr.ReadPage(page.RootPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "head" || nrefs != 1 {
		t.Fatalf("root after split: %q nrefs=%d", data, nrefs)
	}
	data, _, err = tr.ReadPage(page.Path{0})
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "tail" {
		t.Fatalf("tail page: %q", data)
	}
	if err := tr.SplitPage(page.RootPath, 99); !errors.Is(err, ErrBadPath) {
		t.Fatal("split past end accepted")
	}
}

func TestWritePageTooLarge(t *testing.T) {
	s := newStore(t)
	tr := buildFile(t, s)
	big := bytes.Repeat([]byte{1}, 2000) // block size is 1024
	if err := tr.WritePage(page.Path{0}, big); !errors.Is(err, page.ErrPageFull) {
		t.Fatalf("err = %v, want ErrPageFull", err)
	}
}

func TestPeekDoesNotShadowOrFlag(t *testing.T) {
	s := newStore(t)
	base := buildFile(t, s)
	_, vc2, _ := caps(t)
	v2, _ := CreateVersion(s, base.Root, vc2)
	pg, err := v2.PeekPage(page.Path{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if string(pg.Data) != "gc1" {
		t.Fatalf("peek read %q", pg.Data)
	}
	priv, _ := v2.PrivateBlocks()
	if len(priv) != 1 {
		t.Fatalf("peek shadowed %d blocks", len(priv)-1)
	}
	vp, _ := v2.VersionPage()
	if vp.RootFlags&page.FlagS != 0 {
		t.Fatal("peek set flags")
	}
}

func TestWalkVisitsAllPages(t *testing.T) {
	s := newStore(t)
	tr := buildFile(t, s)
	var paths []string
	err := tr.Walk(func(p page.Path, _ page.Ref, _ *page.Page) error {
		paths = append(paths, p.String())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"/", "/0", "/1", "/1/0", "/1/1", "/2"}
	if len(paths) != len(want) {
		t.Fatalf("walk visited %v, want %v", paths, want)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("walk order %v, want %v", paths, want)
		}
	}
}

func TestWalkPropagatesError(t *testing.T) {
	s := newStore(t)
	tr := buildFile(t, s)
	boom := fmt.Errorf("boom")
	if err := tr.Walk(func(page.Path, page.Ref, *page.Page) error { return boom }); !errors.Is(err, boom) {
		t.Fatal("walk swallowed error")
	}
}

func TestBlocksSetDiffersBetweenVersions(t *testing.T) {
	s := newStore(t)
	base := buildFile(t, s)
	_, vc2, _ := caps(t)
	v2, _ := CreateVersion(s, base.Root, vc2)
	v2.WritePage(page.Path{0}, []byte("x"))

	bb, err := base.Blocks()
	if err != nil {
		t.Fatal(err)
	}
	vb, err := v2.Blocks()
	if err != nil {
		t.Fatal(err)
	}
	shared := 0
	for b := range vb {
		if bb[b] {
			shared++
		}
	}
	// v2 shares child1 (+its grandchildren) and child2 with base:
	// 4 shared blocks; root and child0 are private.
	if shared != 4 {
		t.Fatalf("%d shared blocks, want 4", shared)
	}
}

func TestCreateVersionRequiresVersionPage(t *testing.T) {
	s := newStore(t)
	tr := buildFile(t, s)
	vp, _ := tr.VersionPage()
	childBlk := vp.Refs[0].Block
	_, vc, _ := caps(t)
	if _, err := CreateVersion(s, childBlk, vc); !errors.Is(err, ErrBadPath) {
		t.Fatalf("err = %v, want ErrBadPath", err)
	}
}

func TestDeepTree(t *testing.T) {
	s := newStore(t)
	fc, vc, _ := caps(t)
	tr, err := CreateFile(s, fc, vc, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Build a 10-deep chain and write at the bottom.
	p := page.RootPath
	for depth := 0; depth < 10; depth++ {
		if err := tr.InsertPage(p, 0, []byte(fmt.Sprintf("d%d", depth))); err != nil {
			t.Fatal(err)
		}
		p = p.Child(0)
	}
	if err := tr.WritePage(p, []byte("bottom")); err != nil {
		t.Fatal(err)
	}
	data, _, err := tr.ReadPage(p)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "bottom" {
		t.Fatalf("deep read %q", data)
	}

	// A version of the deep file copies exactly the path on write.
	_, vc2, _ := caps(t)
	v2, err := CreateVersion(s, tr.Root, vc2)
	if err != nil {
		t.Fatal(err)
	}
	if err := v2.WritePage(p, []byte("BOTTOM")); err != nil {
		t.Fatal(err)
	}
	priv, _ := v2.PrivateBlocks()
	if len(priv) != 11 { // version page + 10 path pages
		t.Fatalf("deep write copied %d blocks, want 11", len(priv))
	}
}
