// Package server implements the Amoeba File Server process: the service
// that manages files and versions on top of the block service, enforcing
// protection with capabilities, concurrency control with the optimistic
// mechanism of §5.2 and, for super-files, the locking mechanism of §5.3.
//
// A file service consists of any number of Server processes sharing the
// capability factory and file table (the paper's replicated structures)
// and a block store. Each Server has its own port: lock fields name the
// individual server so waiters can detect its death, and clients fail
// over to a sibling server when theirs stops answering. Uncommitted
// versions are managed by the server that created them and die with it;
// "clients must be prepared to redo the updates in a version" (§5.4.1).
package server

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/archive"
	"repro/internal/block"
	"repro/internal/capability"
	"repro/internal/file"
	"repro/internal/ftab"
	"repro/internal/lock"
	"repro/internal/occ"
	"repro/internal/page"
	"repro/internal/trace"
	"repro/internal/version"
)

// Errors of the file service.
var (
	// ErrUnknownVersion reports a version capability this server does
	// not manage (possibly because it crashed and lost the version).
	ErrUnknownVersion = errors.New("server: unknown version")
	// ErrVersionClosed reports an operation on a committed or aborted
	// version.
	ErrVersionClosed = errors.New("server: version closed")
	// ErrNoArchive reports a snapshot operation on a service with no
	// archive tier configured.
	ErrNoArchive = errors.New("server: no archive tier configured")
)

// PortRegistry tracks the liveness of update ports: every open update
// holds its locks under a fresh port registered here, and waiters probe
// it. The in-memory registry serves single-process clusters; the core
// package bridges to the rpc network so that a server crash kills all of
// its update ports at once.
type PortRegistry interface {
	// Register announces a live port.
	Register(p capability.Port)
	// Unregister removes a port; probes then report it dead.
	Unregister(p capability.Port)
	// Alive reports whether the port is registered.
	Alive(p capability.Port) bool
}

// MemRegistry is the in-memory PortRegistry.
type MemRegistry struct {
	mu    sync.Mutex
	ports map[capability.Port]bool
}

// NewMemRegistry creates an empty registry.
func NewMemRegistry() *MemRegistry {
	return &MemRegistry{ports: make(map[capability.Port]bool)}
}

// Register implements PortRegistry.
func (r *MemRegistry) Register(p capability.Port) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ports[p] = true
}

// Unregister implements PortRegistry.
func (r *MemRegistry) Unregister(p capability.Port) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.ports, p)
}

// Alive implements PortRegistry.
func (r *MemRegistry) Alive(p capability.Port) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ports[p]
}

// objBandBits is how many of the 24 object-number bits carry the server
// (replica) ID: object numbers minted by different servers of one
// service can never collide, so object allocation needs no cross-server
// coordination at all. 6 bits of ID (ftab.MaxID) leave 18 bits — 262143
// objects — per server.
const objBandBits = 6

// objBandShift positions the ID band at the top of the 24-bit space.
const objBandShift = 24 - objBandBits

// Shared is the state common to all server processes of one file
// service: the paper's replicated file table and shared service
// identity.
type Shared struct {
	// Fact mints and checks capabilities; its port is the service's
	// public identity, common to all servers. In a replicated service
	// the per-object secrets travel with the file table (ftab), so a
	// capability minted by any server verifies at every server.
	Fact *capability.Factory
	// Table is the file table: a plain in-process *file.Table for a
	// single-machine service, or an ftab.Replicated for a multi-server
	// mesh (replace it before the service serves requests).
	Table ftab.Table
	// Store is the block service underneath (a plain server, a sharded
	// facade or a stable pair).
	Store block.Store
	// Acct is the service's block account.
	Acct block.Account
	// Ports answers lock-holder liveness across all servers.
	Ports PortRegistry
	// Archive is the content-addressed archive tier holding demoted
	// snapshots; nil when the deployment runs without one, in which
	// case the snapshot commands answer ErrNoArchive.
	Archive *archive.Store
	// Tracer, when set, receives completed traces reported by clients
	// via CmdTraceReport and serves them on the debug endpoints. Nil
	// disables ingestion (reports are acknowledged and dropped).
	Tracer *trace.Tracer

	mu      sync.Mutex
	id      uint32
	nextObj uint32
}

// NewShared creates the shared service state.
func NewShared(store block.Store, acct block.Account) *Shared {
	return &Shared{
		Fact:  capability.NewFactory(capability.NewPort().Public()),
		Table: file.NewTable(),
		Store: store,
		Acct:  acct,
		Ports: NewMemRegistry(),
	}
}

// SetID assigns this service instance's replica ID (0..ftab.MaxID),
// which bands its object numbers so sibling servers on other machines
// can mint objects concurrently without coordination. Call it before
// the service serves requests; the default ID is 0.
func (sh *Shared) SetID(id uint32) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.id = id & ftab.MaxID
}

// ID returns the instance's replica ID.
func (sh *Shared) ID() uint32 {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.id
}

// AdoptTable installs a rebuilt file table (file.Rebuild) after a
// process restart. Adoption is idempotent and guarded: an object the
// live table already knows — because a sibling server replicated it to
// us, or because an earlier adoption installed it — is left untouched,
// so two servers racing the recovery scan over the same store converge
// on one set of capabilities instead of double-minting. (Racing
// adopters that were partitioned while both scanned still double-mint;
// the replicated table resolves that deterministically — lower server
// ID wins — when they meet.)
//
// A newly adopted file gets a fresh owner capability minted under this
// service's factory (the old secrets died with the old process); the
// object counter advances past the recovered objects of this server's
// own band so new files cannot collide. The returned map hands the new
// owner capabilities to whoever drives the recovery; files skipped
// because they were already live are not in it.
func (sh *Shared) AdoptTable(t *file.Table) map[uint32]capability.Capability {
	out := make(map[uint32]capability.Capability)
	for obj, e := range t.Entries() {
		if _, err := sh.Table.Get(obj); err == nil {
			continue // already live (replicated or previously adopted)
		}
		if _, ok := sh.Fact.Secret(obj); ok {
			// Secret known but entry missing: a concurrent adopter got
			// here between our check and theirs. Keep the registered
			// secret; re-put the entry with its capability.
			if c, ok := sh.Fact.Owner(obj); ok {
				e.Cap = c
				sh.Table.Put(obj, e)
				continue
			}
		}
		c := sh.Fact.Register(obj)
		e.Cap = c
		sh.Table.Put(obj, e)
		out[obj] = c
	}
	sh.syncObjects()
	return out
}

// syncObjects advances the object counter past every known object in
// this server's own band — recovered by scan or adopted from a peer
// snapshot — so newObject cannot re-issue a number.
func (sh *Shared) syncObjects() {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, obj := range sh.Table.Objects() {
		if obj>>objBandShift != sh.id {
			continue
		}
		if n := obj & (1<<objBandShift - 1); n > sh.nextObj {
			sh.nextObj = n
		}
	}
}

// newObject reserves a fresh object number in this server's band and
// mints its owner capability. Numbers whose secrets are already present
// (adopted from a peer snapshot minted by this server's previous life)
// are skipped.
func (sh *Shared) newObject() (uint32, capability.Capability) {
	for {
		sh.mu.Lock()
		sh.nextObj++
		obj := sh.id<<objBandShift | sh.nextObj&(1<<objBandShift-1)
		sh.mu.Unlock()
		if _, taken := sh.Fact.Secret(obj); taken {
			continue
		}
		return obj, sh.Fact.Register(obj)
	}
}

// VersionState is the lifecycle of a version record.
type VersionState int

// Version lifecycle states.
const (
	StateActive VersionState = iota
	StateCommitted
	StateAborted
)

// verRec is this server's record of one uncommitted (or just-closed)
// version.
type verRec struct {
	mu      sync.Mutex
	cap     capability.Capability
	fileObj uint32
	tree    *version.Tree
	state   VersionState
	// locks acts under this update's own lock port.
	locks *lock.Manager
	// super update bookkeeping: the base version page whose top lock we
	// hold, and the current sub-file version pages we inner-locked.
	super    bool
	topBase  block.Num
	crossing []block.Num
	// closedAt stamps commit/abort for record reaping.
	closedAt time.Time
}

// CreateVersionOpts selects the §5.3 lock discipline variants.
type CreateVersionOpts struct {
	// RespectTopHint makes a small-file update wait for the top-lock
	// hint: the paper's soft-locking scheme for updates "known to
	// affect large parts of a small file".
	RespectTopHint bool
	// RelaxSuperLock allows creating a super-file version even when the
	// top lock is set: "The optimistic concurrency control which still
	// lurks underneath this locking mechanism will see to it that no
	// harm is done."
	RelaxSuperLock bool
}

// Server is one Amoeba File Server process.
type Server struct {
	shared *Shared
	port   capability.Port
	st     *version.Store
	com    *occ.Committer
	locks  *lock.Manager
	// ports tracks this server's update ports; by default the service's
	// shared registry, replaced by a network-backed registry in
	// clustered deployments so that a process crash kills the ports.
	ports PortRegistry

	mu       sync.Mutex
	versions map[uint32]*verRec
	crashed  bool
}

// New creates a server process with its own port. probe answers lock
// holder liveness; pass nil to probe the service's port registry.
func New(shared *Shared, probe lock.Prober) *Server {
	port := capability.NewPort().Public()
	st := version.NewStore(shared.Store, shared.Acct)
	if probe == nil {
		probe = shared.Ports.Alive
	}
	s := &Server{
		shared:   shared,
		port:     port,
		st:       st,
		com:      occ.NewCommitter(st),
		locks:    lock.NewManager(st, port, probe),
		ports:    shared.Ports,
		versions: make(map[uint32]*verRec),
	}
	return s
}

// UsePortRegistry replaces the server's update-port registry (and should
// be called before the server serves requests). Clustered deployments
// back it with the network so that killing the server's process kills
// its ports.
func (s *Server) UsePortRegistry(reg PortRegistry) { s.ports = reg }

// closedGrace is how long a closed version record lingers so that
// follow-up queries (e.g. the commit reply's root lookup) still resolve.
const closedGrace = time.Second

// LiveVersions returns the root blocks of the open versions this server
// manages; the garbage collector pins them. Closed records past their
// grace period are reaped on the way.
func (s *Server) LiveVersions() []block.Num {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]block.Num, 0, len(s.versions))
	now := time.Now()
	for obj, rec := range s.versions {
		if rec.state == StateActive {
			out = append(out, rec.tree.Root)
			continue
		}
		if !rec.closedAt.IsZero() && now.Sub(rec.closedAt) > closedGrace {
			delete(s.versions, obj)
		}
	}
	return out
}

// Port returns this server's transport port (also its lock identity).
func (s *Server) Port() capability.Port { return s.port }

// Shared returns the service-wide state.
func (s *Server) Shared() *Shared { return s.shared }

// Store exposes the version store for tools (GC, benches).
func (s *Server) Store() *version.Store { return s.st }

// OCCStats exposes commit instrumentation.
func (s *Server) OCCStats() *occ.Stats { return s.com.Stat }

// LockManager exposes the lock manager (examples and tests).
func (s *Server) LockManager() *lock.Manager { return s.locks }

// Crash simulates a server-process crash: all in-memory version records
// vanish and their update ports die, so probes by waiters fail. Locks
// held on disk remain — exactly the §5.3 situation that waiters recover
// from.
func (s *Server) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crashed = true
	for _, rec := range s.versions {
		s.ports.Unregister(rec.locks.Port)
	}
	s.versions = make(map[uint32]*verRec)
}

// checkAlive refuses service after a crash.
func (s *Server) checkAlive() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return fmt.Errorf("server %v: crashed", s.port)
	}
	return nil
}

// CreateFile creates a new small file whose birth version holds data,
// committed immediately. It returns the owner file capability.
func (s *Server) CreateFile(data []byte) (capability.Capability, error) {
	if err := s.checkAlive(); err != nil {
		return capability.Nil, err
	}
	obj, fcap := s.shared.newObject()
	_, vcap := s.shared.newObject()
	tr, err := version.CreateFile(s.st, fcap, vcap, data)
	if err != nil {
		return capability.Nil, err
	}
	s.shared.Table.Put(obj, file.Entry{Cap: fcap, Entry: tr.Root})
	return fcap, nil
}

// currentOf resolves the current version root of a file.
func (s *Server) currentOf(fileObj uint32) (block.Num, file.Entry, error) {
	e, err := s.shared.Table.Get(fileObj)
	if err != nil {
		return block.NilNum, file.Entry{}, err
	}
	cur, err := occ.Current(s.st, e.Entry)
	if err != nil {
		return block.NilNum, file.Entry{}, err
	}
	if cur != e.Entry {
		s.shared.Table.Advance(fileObj, cur)
	}
	return cur, e, nil
}

// CreateVersion opens a new version of the file for update, applying the
// §5.3 lock step: super-files require both lock fields clear and take the
// top lock; small files test only the inner lock but set the top lock.
func (s *Server) CreateVersion(fcap capability.Capability, opts CreateVersionOpts) (capability.Capability, error) {
	if err := s.checkAlive(); err != nil {
		return capability.Nil, err
	}
	if err := s.shared.Fact.Verify(fcap, capability.RightCreate); err != nil {
		return capability.Nil, err
	}
	cur, entry, err := s.currentOf(fcap.Object)
	if err != nil {
		return capability.Nil, err
	}
	superDiscipline := entry.Super && !opts.RelaxSuperLock
	if opts.RespectTopHint {
		superDiscipline = true
	}
	// Every update holds its locks under a fresh port whose liveness
	// waiters can probe; the port dies with the update or its server.
	upPort := capability.NewPort().Public()
	s.ports.Register(upPort)
	mgr := s.locks.As(upPort)
	if err := mgr.AcquireTop(cur, superDiscipline); err != nil {
		s.ports.Unregister(upPort)
		return capability.Nil, err
	}

	obj, vcap := s.shared.newObject()
	tr, err := version.CreateVersion(s.st, cur, vcap)
	if err != nil {
		mgr.Clear(cur, upPort)
		s.ports.Unregister(upPort)
		return capability.Nil, err
	}
	rec := &verRec{
		cap:     vcap,
		fileObj: fcap.Object,
		tree:    tr,
		locks:   mgr,
		super:   entry.Super,
		topBase: cur,
	}
	s.mu.Lock()
	s.versions[obj] = rec
	s.mu.Unlock()
	return vcap, nil
}

// lookup resolves and checks a version capability to this server's
// record.
func (s *Server) lookup(vcap capability.Capability, need capability.Rights) (*verRec, error) {
	if err := s.checkAlive(); err != nil {
		return nil, err
	}
	if err := s.shared.Fact.Verify(vcap, need); err != nil {
		return nil, err
	}
	s.mu.Lock()
	rec, ok := s.versions[vcap.Object]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("version object %d: %w", vcap.Object, ErrUnknownVersion)
	}
	return rec, nil
}

// resolve walks the path from the version's root, crossing sub-file
// boundaries per §5.3: each first crossing inner-locks the sub-file's
// current version and creates a new version of it inside this update.
// It returns the innermost tree and the residual path within it.
func (s *Server) resolve(rec *verRec, p page.Path) (*version.Tree, page.Path, error) {
	tree := rec.tree
	rest := p
	for {
		boundary, subBlk, accessed, err := findBoundary(s.st, tree, rest)
		if err != nil {
			return nil, nil, err
		}
		if boundary < 0 {
			return tree, rest, nil
		}
		var subRoot block.Num
		if accessed {
			// Already crossed during this update: the ref points at
			// the sub-version we created.
			subRoot = subBlk
		} else {
			// First crossing: lock and fork the sub-file's current
			// version. The sub-file may have been updated since the
			// super-file's tree last changed, so chase to current.
			subCur, err := occ.Current(s.st, subBlk)
			if err != nil {
				return nil, nil, err
			}
			if err := rec.locks.AcquireInner(subCur); err != nil {
				return nil, nil, err
			}
			_, subVCap := s.shared.newObject()
			subTree, err := version.CreateVersion(s.st, subCur, subVCap)
			if err != nil {
				rec.locks.Clear(subCur, rec.locks.Port)
				return nil, nil, err
			}
			// Parent reference: ascend to the enclosing version page.
			if err := s.setParentRef(subTree.Root, tree.Root); err != nil {
				return nil, nil, err
			}
			parentPath := rest[:boundary]
			if err := tree.LinkSubVersion(parentPath, rest[boundary], subTree.Root); err != nil {
				return nil, nil, err
			}
			rec.crossing = append(rec.crossing, subCur)
			subRoot = subTree.Root
			s.shared.Table.MarkSuper(rec.fileObj)
		}
		tree = &version.Tree{St: s.st, Root: subRoot}
		rest = rest[boundary+1:]
	}
}

// setParentRef points a sub-version's parent reference at the enclosing
// version page.
func (s *Server) setParentRef(sub, parent block.Num) error {
	vp, err := s.st.ReadPage(sub)
	if err != nil {
		return err
	}
	vp.ParentRef = parent
	return s.st.WritePage(sub, vp)
}

// findBoundary peeks along rest in tree and returns the depth of the
// first reference that points at a version page (a sub-file root), the
// referenced block, and whether the reference was already accessed in
// this version. Depth -1 means the path stays inside this file.
func findBoundary(st *version.Store, tree *version.Tree, rest page.Path) (int, block.Num, bool, error) {
	cur, err := st.ReadPage(tree.Root)
	if err != nil {
		return 0, 0, false, err
	}
	for depth, idx := range rest {
		if idx < 0 || idx >= len(cur.Refs) {
			return 0, 0, false, fmt.Errorf("server: %s index %d of %d: %w",
				rest, idx, len(cur.Refs), version.ErrBadPath)
		}
		ref := cur.Refs[idx]
		if ref.IsNil() {
			return 0, 0, false, fmt.Errorf("server: %s depth %d: %w", rest, depth, version.ErrHole)
		}
		child, err := st.ReadPage(ref.Block)
		if err != nil {
			return 0, 0, false, err
		}
		if child.IsVersion {
			return depth, ref.Block, ref.Flags.Accessed(), nil
		}
		cur = child
	}
	return -1, 0, false, nil
}

// withVersion runs fn on an open version under its record lock.
func (s *Server) withVersion(vcap capability.Capability, need capability.Rights, fn func(rec *verRec) error) error {
	rec, err := s.lookup(vcap, need)
	if err != nil {
		return err
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.state != StateActive {
		return fmt.Errorf("version object %d: %w", vcap.Object, ErrVersionClosed)
	}
	return fn(rec)
}

// ReadPage reads the page at path in the version.
func (s *Server) ReadPage(vcap capability.Capability, p page.Path) (data []byte, nrefs int, err error) {
	err = s.withVersion(vcap, capability.RightRead, func(rec *verRec) error {
		tree, rest, err := s.resolve(rec, p)
		if err != nil {
			return err
		}
		data, nrefs, err = tree.ReadPage(rest)
		return err
	})
	return data, nrefs, err
}

// WritePage replaces the data of the page at path in the version.
func (s *Server) WritePage(vcap capability.Capability, p page.Path, data []byte) error {
	return s.withVersion(vcap, capability.RightWrite, func(rec *verRec) error {
		tree, rest, err := s.resolve(rec, p)
		if err != nil {
			return err
		}
		return tree.WritePage(rest, data)
	})
}

// InsertPage inserts a fresh page at index idx of the page at path.
func (s *Server) InsertPage(vcap capability.Capability, p page.Path, idx int, data []byte) error {
	return s.withVersion(vcap, capability.RightWrite, func(rec *verRec) error {
		tree, rest, err := s.resolve(rec, p)
		if err != nil {
			return err
		}
		return tree.InsertPage(rest, idx, data)
	})
}

// RemovePage removes the reference at index idx of the page at path.
func (s *Server) RemovePage(vcap capability.Capability, p page.Path, idx int) error {
	return s.withVersion(vcap, capability.RightWrite, func(rec *verRec) error {
		tree, rest, err := s.resolve(rec, p)
		if err != nil {
			return err
		}
		return tree.RemovePage(rest, idx)
	})
}

// MakeHole, FillHole, RemoveHole, SplitPage and MoveSubtree expose the
// remaining §5 shape commands.

// MakeHole nils the reference at idx of the page at path.
func (s *Server) MakeHole(vcap capability.Capability, p page.Path, idx int) error {
	return s.withVersion(vcap, capability.RightWrite, func(rec *verRec) error {
		tree, rest, err := s.resolve(rec, p)
		if err != nil {
			return err
		}
		return tree.MakeHole(rest, idx)
	})
}

// FillHole creates a page in the hole at idx of the page at path.
func (s *Server) FillHole(vcap capability.Capability, p page.Path, idx int, data []byte) error {
	return s.withVersion(vcap, capability.RightWrite, func(rec *verRec) error {
		tree, rest, err := s.resolve(rec, p)
		if err != nil {
			return err
		}
		return tree.FillHole(rest, idx, data)
	})
}

// RemoveHole removes the hole at idx of the page at path.
func (s *Server) RemoveHole(vcap capability.Capability, p page.Path, idx int) error {
	return s.withVersion(vcap, capability.RightWrite, func(rec *verRec) error {
		tree, rest, err := s.resolve(rec, p)
		if err != nil {
			return err
		}
		return tree.RemoveHole(rest, idx)
	})
}

// SplitPage splits the page at path, keeping keep data bytes and moving
// the rest into a new child.
func (s *Server) SplitPage(vcap capability.Capability, p page.Path, keep int) error {
	return s.withVersion(vcap, capability.RightWrite, func(rec *verRec) error {
		tree, rest, err := s.resolve(rec, p)
		if err != nil {
			return err
		}
		return tree.SplitPage(rest, keep)
	})
}

// MoveSubtree moves a subtree between two holes of the same version (and
// the same file: moves across sub-file boundaries are not supported).
func (s *Server) MoveSubtree(vcap capability.Capability, srcPath page.Path, srcIdx int, dstPath page.Path, dstIdx int) error {
	return s.withVersion(vcap, capability.RightWrite, func(rec *verRec) error {
		srcTree, srcRest, err := s.resolve(rec, srcPath)
		if err != nil {
			return err
		}
		dstTree, dstRest, err := s.resolve(rec, dstPath)
		if err != nil {
			return err
		}
		if srcTree.Root != dstTree.Root {
			return fmt.Errorf("server: move crosses a sub-file boundary: %w", version.ErrSubFile)
		}
		return srcTree.MoveSubtree(srcRest, srcIdx, dstRest, dstIdx)
	})
}

// CreateSubFile creates a brand-new file whose birth version page is
// embedded at index idx of the page at path inside the open version,
// turning the enclosing file into a super-file. It returns the sub-file's
// owner capability.
func (s *Server) CreateSubFile(vcap capability.Capability, p page.Path, idx int, data []byte) (capability.Capability, error) {
	var fcap capability.Capability
	err := s.withVersion(vcap, capability.RightWrite, func(rec *verRec) error {
		tree, rest, err := s.resolve(rec, p)
		if err != nil {
			return err
		}
		obj, fc := s.shared.newObject()
		_, vc := s.shared.newObject()
		sub, err := version.CreateFile(s.st, fc, vc, data)
		if err != nil {
			return err
		}
		if err := s.setParentRef(sub.Root, tree.Root); err != nil {
			return err
		}
		if err := tree.InsertSubFile(rest, idx, sub.Root); err != nil {
			return err
		}
		s.shared.Table.Put(obj, file.Entry{Cap: fc, Entry: sub.Root})
		s.shared.Table.MarkSuper(rec.fileObj)
		fcap = fc
		return nil
	})
	return fcap, err
}

// Commit makes the version current (§5.2), finishing sub-file commits and
// clearing locks for super-file updates (§5.3). A serialisability
// conflict aborts the version and surfaces occ.ErrConflict: the client
// must redo the update on a fresh version.
func (s *Server) Commit(vcap capability.Capability) error {
	return s.commitT(trace.Context{}, vcap)
}

// commitT is Commit bound to a trace context: on a sampled request the
// OCC engine runs under an occ-layer span against trace-bound storage,
// so the commit's storage fan-out is visible span by span.
func (s *Server) commitT(tc trace.Context, vcap capability.Capability) error {
	return s.withVersion(vcap, capability.RightCommit, func(rec *verRec) error {
		defer func(start time.Time) {
			s.com.Stat.Latency.Observe(time.Since(start))
		}(time.Now())
		err := s.com.BindTrace(tc).Commit(rec.tree)
		if errors.Is(err, occ.ErrConflict) {
			rec.state = StateAborted
			rec.closedAt = time.Now()
			s.releaseLocks(rec)
			return err
		}
		if err != nil {
			return err
		}
		// Commit the sub-file versions created during this update and
		// clear every lock we hold in the affected region.
		if len(rec.crossing) > 0 || rec.super {
			if err := rec.locks.CommitSubFiles(rec.tree.Root, rec.locks.Port); err != nil {
				return err
			}
		}
		rec.locks.Clear(rec.topBase, rec.locks.Port)
		rec.locks.Clear(rec.tree.Root, rec.locks.Port)
		rec.state = StateCommitted
		rec.closedAt = time.Now()
		// The §5.4.1 table update: one CAS on the file's entry. This is
		// the client's ack point — the commit is already durable through
		// the storage-level commit reference set above, so the CAS only
		// needs to land in the local table; propagation to peer replicas
		// rides ftab's asynchronous batched streams, and late or lost
		// deliveries self-heal through the chase rule.
		s.shared.Table.CommitCAS(rec.fileObj, rec.topBase, rec.tree.Root)
		s.ports.Unregister(rec.locks.Port)
		return nil
	})
}

// Abort abandons the version: its private pages become garbage for the
// collector, and all locks are released.
func (s *Server) Abort(vcap capability.Capability) error {
	return s.withVersion(vcap, capability.RightCommit, func(rec *verRec) error {
		rec.state = StateAborted
		rec.closedAt = time.Now()
		s.releaseLocks(rec)
		return nil
	})
}

// releaseLocks clears the top lock and any inner locks of an update, then
// retires its lock port.
func (s *Server) releaseLocks(rec *verRec) {
	rec.locks.Clear(rec.topBase, rec.locks.Port)
	for _, sub := range rec.crossing {
		rec.locks.Clear(sub, rec.locks.Port)
	}
	s.ports.Unregister(rec.locks.Port)
}

// CurrentVersion returns the root block of the file's current version:
// the entry point for history walks and cache validation.
func (s *Server) CurrentVersion(fcap capability.Capability) (block.Num, error) {
	if err := s.checkAlive(); err != nil {
		return block.NilNum, err
	}
	if err := s.shared.Fact.Verify(fcap, capability.RightRead); err != nil {
		return block.NilNum, err
	}
	cur, _, err := s.currentOf(fcap.Object)
	return cur, err
}

// History returns the committed version chain of the file, oldest first.
func (s *Server) History(fcap capability.Capability) ([]block.Num, error) {
	if err := s.checkAlive(); err != nil {
		return nil, err
	}
	if err := s.shared.Fact.Verify(fcap, capability.RightRead); err != nil {
		return nil, err
	}
	e, err := s.shared.Table.Get(fcap.Object)
	if err != nil {
		return nil, err
	}
	return occ.History(s.st, e.Entry)
}

// ReadCommitted reads a page from a committed version root without any
// access tracking: committed versions are immutable, so reads need no
// concurrency control. Used by time-travel reads and the cache layer.
func (s *Server) ReadCommitted(root block.Num, p page.Path) ([]byte, int, error) {
	if err := s.checkAlive(); err != nil {
		return nil, 0, err
	}
	tr := &version.Tree{St: s.st, Root: root}
	pg, err := tr.PeekPage(p)
	if err != nil {
		return nil, 0, err
	}
	return append([]byte(nil), pg.Data...), len(pg.Refs), nil
}

// Snapshots lists the archived snapshots of the file, oldest first:
// the per-commit entries the archiver logged when demoting superseded
// committed versions out of the front tier. Unlike History — which
// walks the front tier's retained chain — the list survives the
// garbage collector and server restarts, as long as the archive does.
func (s *Server) Snapshots(fcap capability.Capability) ([]archive.Entry, error) {
	if err := s.checkAlive(); err != nil {
		return nil, err
	}
	if err := s.shared.Fact.Verify(fcap, capability.RightRead); err != nil {
		return nil, err
	}
	if s.shared.Archive == nil {
		return nil, ErrNoArchive
	}
	return s.shared.Archive.Snapshots(fcap.Object), nil
}

// ReadSnapshot reads one page of the file as of archived snapshot seq:
// the read-only time-travel path. The page tree is read through the
// archive facade, so every block is re-hashed against its stored score
// on the way — damage surfaces as block.ErrCorrupt naming the block.
func (s *Server) ReadSnapshot(fcap capability.Capability, seq uint64, p page.Path) ([]byte, int, error) {
	if err := s.checkAlive(); err != nil {
		return nil, 0, err
	}
	if err := s.shared.Fact.Verify(fcap, capability.RightRead); err != nil {
		return nil, 0, err
	}
	arch := s.shared.Archive
	if arch == nil {
		return nil, 0, ErrNoArchive
	}
	e, ok := arch.Snapshot(fcap.Object, seq)
	if !ok {
		return nil, 0, fmt.Errorf("server: object %d snapshot %d: %w", fcap.Object, seq, archive.ErrUnknownSnapshot)
	}
	tr := &version.Tree{St: version.NewStore(arch, s.shared.Acct), Root: e.Root}
	pg, err := tr.PeekPage(p)
	if err != nil {
		return nil, 0, err
	}
	return append([]byte(nil), pg.Data...), len(pg.Refs), nil
}

// PrefetchEntry is one page returned by Prefetch.
type PrefetchEntry struct {
	Path  page.Path
	NRefs int
	Data  []byte
}

// Prefetch reads the page at path in the committed version rooted at
// root together with as much of its subtree (breadth-first, fetched
// with multi-block reads) as fits in budget bytes of reply entries.
// Like ReadCommitted it records no accesses — committed versions are
// immutable — so a client can warm its cache for a whole subtree in one
// round trip without inflating any update's read set. Sub-file
// boundaries are not crossed. A partial result (the budget ran out, or
// a page vanished under a concurrent collector) is not an error.
func (s *Server) Prefetch(root block.Num, p page.Path, budget int) ([]PrefetchEntry, error) {
	if err := s.checkAlive(); err != nil {
		return nil, err
	}
	tree := &version.Tree{St: s.st, Root: root}
	start, err := tree.PeekPage(p)
	if err != nil {
		return nil, err
	}
	type node struct {
		path page.Path
		pg   *page.Page
	}
	frontier := []node{{p, start}}
	var out []PrefetchEntry
	used := 0
	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		enc, err := n.path.Encode(nil)
		if err != nil {
			return nil, err
		}
		cost := len(enc) + 8 + len(n.pg.Data)
		if used+cost > budget {
			break
		}
		out = append(out, PrefetchEntry{Path: n.path, NRefs: len(n.pg.Refs), Data: n.pg.Data})
		used += cost
		var idxs []int
		var ns []block.Num
		for i, r := range n.pg.Refs {
			if r.IsNil() {
				continue
			}
			idxs = append(idxs, i)
			ns = append(ns, r.Block)
		}
		if len(ns) == 0 {
			continue
		}
		children, err := s.st.ReadPages(ns)
		if err != nil {
			break // partial prefetch is still useful
		}
		for k, c := range children {
			if c.IsVersion {
				continue // do not cross into sub-files
			}
			frontier = append(frontier, node{n.path.Child(idxs[k]), c})
		}
	}
	return out, nil
}

// VersionRoot exposes an open version's root block (cache layer).
func (s *Server) VersionRoot(vcap capability.Capability) (block.Num, error) {
	rec, err := s.lookup(vcap, 0)
	if err != nil {
		return block.NilNum, err
	}
	return rec.tree.Root, nil
}

// VersionBase exposes the version's base root: the committed version it
// was created from, which is what client cache entries must match.
func (s *Server) VersionBase(vcap capability.Capability) (block.Num, error) {
	rec, err := s.lookup(vcap, 0)
	if err != nil {
		return block.NilNum, err
	}
	return rec.topBase, nil
}
