package rpc

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/capability"
)

func TestMessageEncodeDecodeRoundTrip(t *testing.T) {
	f := capability.NewFactory(capability.NewPort().Public())
	m := &Message{
		Command: 7,
		Status:  StatusConflict,
		Args:    [4]uint64{1, 2, 3, 4},
		Caps:    []capability.Capability{f.Register(1), f.Register(2)},
		Data:    []byte("payload"),
	}
	enc, err := m.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMessage(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Command != m.Command || got.Status != m.Status || got.Args != m.Args {
		t.Fatalf("header mismatch: %+v vs %+v", got, m)
	}
	if len(got.Caps) != 2 || got.Caps[0] != m.Caps[0] || got.Caps[1] != m.Caps[1] {
		t.Fatal("caps mismatch")
	}
	if !bytes.Equal(got.Data, m.Data) {
		t.Fatal("data mismatch")
	}
}

func TestMessageEncodeEmpty(t *testing.T) {
	m := &Message{Command: 1}
	enc, err := m.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMessage(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Command != 1 || len(got.Caps) != 0 || len(got.Data) != 0 {
		t.Fatalf("decoded %+v", got)
	}
}

func TestMessageEncodeLimits(t *testing.T) {
	m := &Message{Data: make([]byte, MaxData+1)}
	if _, err := m.Encode(nil); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize data err = %v", err)
	}
	m = &Message{Caps: make([]capability.Capability, maxCaps+1)}
	if _, err := m.Encode(nil); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("too many caps err = %v", err)
	}
	m = &Message{Data: make([]byte, MaxData)}
	if _, err := m.Encode(nil); err != nil {
		t.Fatalf("exactly MaxData rejected: %v", err)
	}
}

func TestDecodeMalformed(t *testing.T) {
	for _, src := range [][]byte{
		nil,
		make([]byte, 10),
		make([]byte, 44),
	} {
		if _, err := DecodeMessage(src); !errors.Is(err, ErrMalformed) {
			t.Errorf("DecodeMessage(%d bytes) err = %v, want ErrMalformed", len(src), err)
		}
	}
	// Declared data length longer than actual payload.
	m := &Message{Data: []byte("abc")}
	enc, _ := m.Encode(nil)
	if _, err := DecodeMessage(enc[:len(enc)-1]); !errors.Is(err, ErrMalformed) {
		t.Errorf("truncated message err = %v, want ErrMalformed", err)
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	prop := func(cmd uint32, status uint32, args [4]uint64, data []byte) bool {
		if len(data) > MaxData {
			data = data[:MaxData]
		}
		m := &Message{Command: cmd, Status: Status(status), Args: args, Data: data}
		enc, err := m.Encode(nil)
		if err != nil {
			return false
		}
		got, err := DecodeMessage(enc)
		if err != nil {
			return false
		}
		return got.Command == cmd && got.Status == Status(status) &&
			got.Args == args && bytes.Equal(got.Data, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReplyAndErr(t *testing.T) {
	req := &Message{Command: 9}
	ok := req.Reply(StatusOK)
	if ok.Err() != nil {
		t.Fatal("StatusOK should map to nil error")
	}
	bad := req.Errorf(StatusConflict, "version %d", 3)
	if bad.Command != 9 {
		t.Fatal("Errorf must echo command")
	}
	if err := bad.Err(); err == nil || err.Error() != "serialisability conflict: version 3" {
		t.Fatalf("Err() = %v", err)
	}
}

func TestNetworkTransact(t *testing.T) {
	n := NewNetwork()
	port := capability.NewPort().Public()
	err := n.Register("srv", port, func(req *Message) *Message {
		r := req.Reply(StatusOK)
		r.Args[0] = req.Args[0] + 1
		return r
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := n.Transact(port, &Message{Args: [4]uint64{41}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Args[0] != 42 {
		t.Fatalf("Args[0] = %d, want 42", resp.Args[0])
	}
}

func TestNetworkDeadPort(t *testing.T) {
	n := NewNetwork()
	_, err := n.Transact(capability.NewPort().Public(), &Message{})
	if !errors.Is(err, ErrDeadPort) {
		t.Fatalf("err = %v, want ErrDeadPort", err)
	}
	if n.Stats().DeadPort != 1 {
		t.Fatal("dead port not counted")
	}
}

func TestNetworkCrashGroup(t *testing.T) {
	n := NewNetwork()
	p1, p2 := capability.NewPort().Public(), capability.NewPort().Public()
	p3 := capability.NewPort().Public()
	echo := func(req *Message) *Message { return req.Reply(StatusOK) }
	n.Register("a", p1, echo)
	n.Register("a", p2, echo)
	n.Register("b", p3, echo)
	n.Crash("a")
	if _, err := n.Transact(p1, &Message{}); !errors.Is(err, ErrDeadPort) {
		t.Fatal("p1 alive after crash")
	}
	if _, err := n.Transact(p2, &Message{}); !errors.Is(err, ErrDeadPort) {
		t.Fatal("p2 alive after crash")
	}
	if _, err := n.Transact(p3, &Message{}); err != nil {
		t.Fatalf("p3 affected by crash of group a: %v", err)
	}
	if !n.Alive(p3) || n.Alive(p1) {
		t.Fatal("Alive wrong after crash")
	}
}

func TestNetworkDuplicateRegister(t *testing.T) {
	n := NewNetwork()
	p := capability.NewPort().Public()
	h := func(req *Message) *Message { return req.Reply(StatusOK) }
	if err := n.Register("", p, h); err != nil {
		t.Fatal(err)
	}
	if err := n.Register("", p, h); err == nil {
		t.Fatal("duplicate register accepted")
	}
	if err := n.Register("", capability.NilPort, h); err == nil {
		t.Fatal("nil port register accepted")
	}
}

func TestNetworkNilHandlerReply(t *testing.T) {
	n := NewNetwork()
	p := capability.NewPort().Public()
	n.Register("", p, func(req *Message) *Message { return nil })
	resp, err := n.Transact(p, &Message{Command: 5})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusBadCommand {
		t.Fatalf("status = %v, want bad command", resp.Status)
	}
}

func TestNetworkConcurrentTransactions(t *testing.T) {
	n := NewNetwork()
	p := capability.NewPort().Public()
	var counter sync.Mutex
	total := 0
	n.Register("", p, func(req *Message) *Message {
		counter.Lock()
		total++
		counter.Unlock()
		return req.Reply(StatusOK)
	})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if _, err := n.Transact(p, &Message{}); err != nil {
					t.Errorf("transact: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if total != 1600 {
		t.Fatalf("handled %d, want 1600", total)
	}
	if n.Stats().Transactions != 1600 {
		t.Fatalf("stats = %+v", n.Stats())
	}
}

func TestTCPTransport(t *testing.T) {
	srv, err := NewTCPServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	port := capability.NewPort().Public()
	srv.Register(port, func(req *Message) *Message {
		r := req.Reply(StatusOK)
		r.Data = append([]byte("echo:"), req.Data...)
		return r
	})

	res := NewResolver()
	res.Set(port, srv.Addr())
	cli := NewTCPClient(res)
	defer cli.Close()

	resp, err := cli.Transact(port, &Message{Command: 3, Data: []byte("hi")})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Data) != "echo:hi" {
		t.Fatalf("data = %q", resp.Data)
	}

	// Second transaction reuses the pooled connection.
	if _, err := cli.Transact(port, &Message{Command: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestTCPDeadPort(t *testing.T) {
	srv, err := NewTCPServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res := NewResolver()
	cli := NewTCPClient(res)
	defer cli.Close()

	// Unresolved port.
	unknown := capability.NewPort().Public()
	if _, err := cli.Transact(unknown, &Message{}); !errors.Is(err, ErrDeadPort) {
		t.Fatalf("unresolved port err = %v", err)
	}

	// Resolved but unregistered port on a live server.
	res.Set(unknown, srv.Addr())
	if _, err := cli.Transact(unknown, &Message{}); !errors.Is(err, ErrDeadPort) {
		t.Fatalf("unregistered port err = %v", err)
	}
}

func TestTCPServerClosedConnection(t *testing.T) {
	srv, err := NewTCPServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := capability.NewPort().Public()
	srv.Register(port, func(req *Message) *Message { return req.Reply(StatusOK) })
	res := NewResolver()
	res.Set(port, srv.Addr())
	cli := NewTCPClient(res)
	defer cli.Close()
	if _, err := cli.Transact(port, &Message{}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := cli.Transact(port, &Message{}); !errors.Is(err, ErrDeadPort) {
		t.Fatalf("transact after server close err = %v, want ErrDeadPort", err)
	}
}

func TestStatusString(t *testing.T) {
	if StatusOK.String() != "ok" || StatusConflict.String() != "serialisability conflict" {
		t.Fatal("status names wrong")
	}
	if Status(999).String() != "status(999)" {
		t.Fatalf("unknown status = %q", Status(999).String())
	}
}
