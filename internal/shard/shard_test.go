package shard_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/block"
	"repro/internal/capability"
	"repro/internal/disk"
	"repro/internal/rpc"
	"repro/internal/shard"
)

func memBackend(capacity, blockSize int) *block.Server {
	return block.NewServer(disk.MustNew(disk.Geometry{Blocks: capacity + 1, BlockSize: blockSize}))
}

// TestPlacement checks the documented placement function: every global
// number round-trips through Locate, and distinct globals from the
// same shard have distinct locals.
func TestPlacement(t *testing.T) {
	backends := []block.Store{memBackend(100, 64), memBackend(100, 64), memBackend(100, 64)}
	s, err := shard.New(backends...)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[block.Num]bool)
	for i := 0; i < 60; i++ {
		n, err := s.Alloc(1, []byte(fmt.Sprint(i)))
		if err != nil {
			t.Fatal(err)
		}
		if n == block.NilNum {
			t.Fatal("allocated the nil block")
		}
		if seen[n] {
			t.Fatalf("global block %d allocated twice", n)
		}
		seen[n] = true
		sh, local := s.Locate(n)
		if want := int(n % 3); sh != want {
			t.Fatalf("Locate(%d) shard = %d, want %d", n, sh, want)
		}
		if want := n / 3; local != want {
			t.Fatalf("Locate(%d) local = %d, want %d", n, local, want)
		}
	}
}

// TestAllocSpreads checks that allocations stripe across shards instead
// of piling on one backend: after many single allocations every shard
// holds a meaningful share.
func TestAllocSpreads(t *testing.T) {
	const nShards, total = 4, 256
	backends := make([]block.Store, nShards)
	counts := make([]*block.Server, nShards)
	for i := range backends {
		srv := memBackend(total, 64)
		backends[i], counts[i] = srv, srv
	}
	s, err := shard.New(backends...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		if _, err := s.Alloc(1, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	for i, srv := range counts {
		if got := srv.InUse(); got < total/nShards/2 {
			t.Fatalf("shard %d holds %d of %d blocks: allocation is not spreading", i, got, total)
		}
	}
}

// TestAllocMultiStripes checks a batched allocation lands on more than
// one shard (the shadow-chain striping the facade exists for).
func TestAllocMultiStripes(t *testing.T) {
	const nShards = 4
	backends := make([]block.Store, nShards)
	counts := make([]*block.Server, nShards)
	for i := range backends {
		srv := memBackend(256, 64)
		backends[i], counts[i] = srv, srv
	}
	s, err := shard.New(backends...)
	if err != nil {
		t.Fatal(err)
	}
	payloads := make([][]byte, 64)
	for i := range payloads {
		payloads[i] = []byte(fmt.Sprint(i))
	}
	ns, err := s.AllocMulti(1, payloads)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != len(payloads) {
		t.Fatalf("got %d blocks for %d payloads", len(ns), len(payloads))
	}
	used := 0
	for _, srv := range counts {
		if srv.InUse() > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("64-block batch landed on %d shard(s), want ≥ 2", used)
	}
	// Round trip through caller order.
	datas, err := s.ReadMulti(1, ns)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range datas {
		if string(d[:len(payloads[i])]) != string(payloads[i]) {
			t.Fatalf("block %d holds %q, want %q", i, d[:8], payloads[i])
		}
	}
}

// TestRecoverMergesShards checks the fanned-out §4 recovery scan
// returns every global number, sorted.
func TestRecoverMergesShards(t *testing.T) {
	s, err := shard.New(memBackend(32, 64), memBackend(32, 64))
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[block.Num]bool)
	for i := 0; i < 20; i++ {
		n, err := s.Alloc(1, []byte("r"))
		if err != nil {
			t.Fatal(err)
		}
		want[n] = true
	}
	if _, err := s.Alloc(2, []byte("other")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Recover(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("recover found %d blocks, want %d", len(got), len(want))
	}
	for i, n := range got {
		if !want[n] {
			t.Fatalf("recover returned foreign block %d", n)
		}
		if i > 0 && got[i-1] >= n {
			t.Fatalf("recover output unsorted at %d", i)
		}
	}
}

// TestShardStatsAggregate checks per-shard counters surface through
// ShardStats and sum through BlockStats/Usage.
func TestShardStatsAggregate(t *testing.T) {
	s, err := shard.New(memBackend(32, 64), memBackend(32, 64))
	if err != nil {
		t.Fatal(err)
	}
	var ns []block.Num
	for i := 0; i < 10; i++ {
		n, err := s.Alloc(1, []byte("s"))
		if err != nil {
			t.Fatal(err)
		}
		ns = append(ns, n)
	}
	if _, err := s.ReadMulti(1, ns); err != nil {
		t.Fatal(err)
	}
	per := s.ShardStats()
	if len(per) != 2 {
		t.Fatalf("ShardStats returned %d entries", len(per))
	}
	var allocs, reads uint64
	for _, st := range per {
		allocs += st.Stats.Allocs
		reads += st.Stats.Reads
	}
	if allocs != 10 || reads != 10 {
		t.Fatalf("per-shard sums: allocs %d reads %d, want 10/10", allocs, reads)
	}
	agg, err := s.BlockStats()
	if err != nil {
		t.Fatal(err)
	}
	if agg.Allocs != 10 || agg.Reads != 10 {
		t.Fatalf("aggregate stats: %+v", agg)
	}
	u, err := s.Usage()
	if err != nil {
		t.Fatal(err)
	}
	if u.Capacity != 64 || u.InUse != 10 {
		t.Fatalf("aggregate usage: %+v", u)
	}
}

// tcpShardCluster stands up nShards block servers, each behind its own
// TCP listener (one "machine" per shard), and a facade mounting them.
type tcpShardCluster struct {
	stores  []*block.Server
	servers []*rpc.TCPServer
	facade  *shard.Store
}

func newTCPShardCluster(t *testing.T, nShards, capacity, blockSize int) *tcpShardCluster {
	t.Helper()
	c := &tcpShardCluster{}
	backends := make([]block.Store, nShards)
	for i := 0; i < nShards; i++ {
		srv := memBackend(capacity, blockSize)
		tcp, err := rpc.NewTCPServer("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tcp.Close() })
		port := capability.NewPort().Public()
		tcp.Register(port, block.Serve(srv))
		res := rpc.NewResolver()
		res.Set(port, tcp.Addr())
		cli := rpc.NewTCPClient(res)
		t.Cleanup(cli.Close)
		// Fail fast when a shard is down: the test kills servers for
		// real, so long backoff only slows the suite.
		cli.SetRetryPolicy(rpc.RetryPolicy{Attempts: 2, Backoff: 1e6, MaxBackoff: 2e6})
		remote, err := block.Dial(cli, port)
		if err != nil {
			t.Fatal(err)
		}
		backends[i] = remote
		c.stores = append(c.stores, srv)
		c.servers = append(c.servers, tcp)
	}
	facade, err := shard.New(backends...)
	if err != nil {
		t.Fatal(err)
	}
	c.facade = facade
	return c
}

// TestDownShardPartialFailure is the multi-op partial-failure story
// when one shard's server is down: operations on live shards keep
// working, multi-ops spanning the dead shard fail with the transport
// error attributed to the lowest-indexed block routed there — while
// their live-shard blocks are still served.
func TestDownShardPartialFailure(t *testing.T) {
	c := newTCPShardCluster(t, 3, 1024, 256)
	s := c.facade

	payloads := make([][]byte, 30)
	for i := range payloads {
		payloads[i] = []byte(fmt.Sprintf("page-%02d", i))
	}
	ns, err := s.AllocMulti(1, payloads)
	if err != nil {
		t.Fatal(err)
	}

	// Kill shard 1's "machine".
	deadShard := 1
	c.servers[deadShard].Close()

	// Single ops: blocks on live shards unaffected, dead shard fails
	// with the transport's dead-port error.
	var liveBlock, deadBlock block.Num
	liveBlock, deadBlock = block.NilNum, block.NilNum
	for _, n := range ns {
		sh, _ := s.Locate(n)
		if sh == deadShard && deadBlock == block.NilNum {
			deadBlock = n
		}
		if sh != deadShard && liveBlock == block.NilNum {
			liveBlock = n
		}
	}
	if liveBlock == block.NilNum || deadBlock == block.NilNum {
		t.Fatalf("30-block batch did not span shard %d and a live shard", deadShard)
	}
	if _, err := s.Read(1, liveBlock); err != nil {
		t.Fatalf("live-shard read failed: %v", err)
	}
	if _, err := s.Read(1, deadBlock); !errors.Is(err, rpc.ErrDeadPort) {
		t.Fatalf("dead-shard read err = %v, want ErrDeadPort", err)
	}

	// ReadMulti spanning the dead shard: all-or-nothing failure, and
	// the reported index names a block routed to the dead shard.
	_, err = s.ReadMulti(1, ns)
	if !errors.Is(err, rpc.ErrDeadPort) {
		t.Fatalf("spanning read err = %v, want ErrDeadPort", err)
	}
	if idx := block.MultiIndex(err, -1); idx < 0 || func() bool { sh, _ := s.Locate(ns[idx]); return sh != deadShard }() {
		t.Fatalf("spanning read attributed to index %d, not a dead-shard block", block.MultiIndex(err, -1))
	}

	// WriteMulti: dead-shard entries fail, live-shard entries are
	// written regardless (per-block independence across shards).
	newData := make([][]byte, len(ns))
	for i := range newData {
		newData[i] = []byte(fmt.Sprintf("new-%02d", i))
	}
	err = s.WriteMulti(1, ns, newData)
	if !errors.Is(err, rpc.ErrDeadPort) {
		t.Fatalf("spanning write err = %v, want ErrDeadPort", err)
	}
	for i, n := range ns {
		if sh, _ := s.Locate(n); sh == deadShard {
			continue
		}
		got, err := s.Read(1, n)
		if err != nil {
			t.Fatalf("block %d unreadable after partial write: %v", n, err)
		}
		if string(got[:6]) != string(newData[i][:6]) {
			t.Fatalf("live block %d = %q, want %q: write did not survive dead sibling", n, got[:6], newData[i][:6])
		}
	}

	// Allocation routes around the dead shard entirely.
	fresh, err := s.AllocMulti(1, payloads[:8])
	if err != nil {
		t.Fatalf("alloc with a dead shard: %v", err)
	}
	for _, n := range fresh {
		if sh, _ := s.Locate(n); sh == deadShard {
			t.Fatalf("allocation landed on dead shard %d", sh)
		}
	}

	// FreeMulti: live-shard blocks freed despite the dead sibling.
	err = s.FreeMulti(1, ns)
	if !errors.Is(err, rpc.ErrDeadPort) {
		t.Fatalf("spanning free err = %v, want ErrDeadPort", err)
	}
	for _, n := range ns {
		if sh, _ := s.Locate(n); sh == deadShard {
			continue
		}
		if _, err := s.Read(1, n); !errors.Is(err, block.ErrNotAllocated) {
			t.Fatalf("live block %d survived the free: %v", n, err)
		}
	}
}

// TestShardStatsOverTCP checks per-shard counters are readable through
// the wire proxy (cmdStats/cmdUsage), which is what lets experiments
// see each block server's operation counts in a real deployment.
func TestShardStatsOverTCP(t *testing.T) {
	c := newTCPShardCluster(t, 2, 128, 128)
	s := c.facade
	var ns []block.Num
	for i := 0; i < 12; i++ {
		n, err := s.Alloc(1, []byte("t"))
		if err != nil {
			t.Fatal(err)
		}
		ns = append(ns, n)
	}
	if _, err := s.ReadMulti(1, ns); err != nil {
		t.Fatal(err)
	}
	var allocs, reads uint64
	var capacity int
	for _, st := range s.ShardStats() {
		allocs += st.Stats.Allocs
		reads += st.Stats.Reads
		capacity += st.Usage.Capacity
	}
	if allocs != 12 || reads != 12 {
		t.Fatalf("over-the-wire per-shard sums: allocs %d reads %d, want 12/12", allocs, reads)
	}
	if capacity != 256 {
		t.Fatalf("over-the-wire capacity sum = %d, want 256", capacity)
	}
}
