package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(10 * time.Microsecond)  // below the first bound
	h.Observe(50 * time.Microsecond)  // exactly on the first bound
	h.Observe(300 * time.Microsecond) // between 0.25ms and 0.5ms
	h.Observe(2 * time.Second)        // beyond every bound: +Inf

	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count %d, want 4", s.Count)
	}
	if got := s.Buckets[0].Count; got != 2 {
		t.Fatalf("le=0.00005 bucket %d, want 2 (exact bound counts as le)", got)
	}
	last := s.Buckets[len(s.Buckets)-1]
	if !math.IsInf(last.UpperBound, 1) || last.Count != 4 {
		t.Fatalf("+Inf bucket %+v, want cumulative 4", last)
	}
	// Cumulative monotonicity.
	prev := uint64(0)
	for _, b := range s.Buckets {
		if b.Count < prev {
			t.Fatalf("buckets not cumulative: %v", s.Buckets)
		}
		prev = b.Count
	}
	if s.SumSeconds < 2.0 || s.SumSeconds > 2.01 {
		t.Fatalf("sum %v, want ~2.00036", s.SumSeconds)
	}
}

func TestExpositionFormat(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	var sb strings.Builder
	WriteHelp(&sb, "afs_commit_seconds", "histogram", "Commit path latency.")
	h.Snapshot().Write(&sb, "afs_commit_seconds", nil)
	WriteSample(&sb, "afs_block_reads_total", map[string]string{"shard": "0"}, 42)
	out := sb.String()
	for _, want := range []string{
		"# HELP afs_commit_seconds Commit path latency.",
		"# TYPE afs_commit_seconds histogram",
		`afs_commit_seconds_bucket{le="0.001"} 1`,
		`afs_commit_seconds_bucket{le="+Inf"} 1`,
		"afs_commit_seconds_count 1",
		`afs_block_reads_total{shard="0"} 42`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
