// Package ftabtest is the cross-replica test harness for the replicated
// file table, mirroring what blocktest does for block stores: it builds
// a mesh of 2–3 table replicas over the in-proc network and one shared
// block store, drives concurrent streams of creates and commit-CASes at
// the replicas (with an optional crash and rejoin of one replica
// mid-stream), and then checks convergence against the ground truth —
// the storage itself.
//
// Convergence after quiesce means, for every replica: its fingerprint
// (entries, super flags and owner capabilities, ftab.Fingerprint) is
// byte-equal to every other live replica's, every entry root is the
// storage head of its commit-reference chain, and the object set equals
// the reference single-map table rebuilt from a §4 recovery scan.
package ftabtest

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/block"
	"repro/internal/capability"
	"repro/internal/disk"
	"repro/internal/file"
	"repro/internal/ftab"
	"repro/internal/occ"
	"repro/internal/rpc"
	"repro/internal/version"
)

// TB is the subset of testing.TB the harness needs, so fuzz targets and
// plain tests share it.
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
	Errorf(format string, args ...any)
	Logf(format string, args ...any)
}

// Replica is one table replica: a full service-instance stand-in
// (table, factory, committer) minus the file servers.
type Replica struct {
	ID   uint32
	Tab  *file.Table
	Fact *capability.Factory
	Rep  *ftab.Replicated
	St   *version.Store
	Com  *occ.Committer

	nextObj atomic.Uint32
	crashed bool
}

// Mesh is the harness: N replicas over one network and one store.
type Mesh struct {
	Net      *rpc.Network
	Store    block.Store
	Acct     block.Account
	Replicas []*Replica
	tune     Tune
}

// Tune shapes the replicas' asynchronous push streams, exercising the
// edge cases the defaults rarely hit: tiny queues force the coalescing
// and overflow paths, Delay injects wire latency (and with it
// cross-origin reordering), PushWindow exercises frame accumulation.
type Tune struct {
	PushBatch  int
	PushQueue  int
	PushWindow time.Duration
	// Delay, when set, is slept before every outbound peer transact.
	Delay func() time.Duration
}

// delayed wraps a Transactor with the tune's injected wire latency.
type delayed struct {
	tr    rpc.Transactor
	delay func() time.Duration
}

func (d delayed) Transact(port capability.Port, req *rpc.Message) (*rpc.Message, error) {
	if dl := d.delay(); dl > 0 {
		time.Sleep(dl)
	}
	return d.tr.Transact(port, req)
}

// peerTransactor returns the transactor replicas reach peers through.
func (m *Mesh) peerTransactor() rpc.Transactor {
	if m.tune.Delay != nil {
		return delayed{tr: m.Net, delay: m.tune.Delay}
	}
	return m.Net
}

// New builds an n-replica mesh (all replicas up and bootstrapped) with
// default stream tuning.
func New(tb TB, n int) *Mesh { return NewTuned(tb, n, Tune{}) }

// NewTuned builds an n-replica mesh with the given stream tuning.
func NewTuned(tb TB, n int, tu Tune) *Mesh {
	tb.Helper()
	d, err := disk.New(disk.Geometry{Blocks: 1 << 14, BlockSize: 512})
	if err != nil {
		tb.Fatalf("disk: %v", err)
	}
	m := &Mesh{Net: rpc.NewNetwork(), Store: block.NewServer(d), Acct: 1, tune: tu}
	for i := 0; i < n; i++ {
		m.Replicas = append(m.Replicas, m.newReplica(tb, uint32(i)))
	}
	for _, r := range m.Replicas {
		for _, o := range m.Replicas {
			if o.ID != r.ID {
				r.Rep.AddPeer(o.ID, m.peerTransactor())
			}
		}
	}
	for i, r := range m.Replicas {
		if err := m.Net.Register(m.group(i), ftab.PortFor(r.ID), r.Rep.Handler()); err != nil {
			tb.Fatalf("register replica %d: %v", i, err)
		}
	}
	for _, r := range m.Replicas {
		r.Rep.Bootstrap()
	}
	return m
}

func (m *Mesh) group(i int) string { return fmt.Sprintf("ftabtest-%d", i) }

// newReplica builds replica state with a fresh identity.
func (m *Mesh) newReplica(tb TB, id uint32) *Replica {
	st := version.NewStore(m.Store, m.Acct)
	tab := file.NewTable()
	fact := capability.NewFactory(capability.NewPort().Public())
	rep := ftab.NewReplicated(ftab.Options{
		ID: id, Local: tab, Store: st, Ident: fact,
		PushBatch: m.tune.PushBatch, PushQueue: m.tune.PushQueue, PushWindow: m.tune.PushWindow,
	})
	return &Replica{ID: id, Tab: tab, Fact: fact, Rep: rep, St: st, Com: occ.NewCommitter(st)}
}

// CreateFile creates a committed birth version through replica i and
// registers it in the replicated table.
func (m *Mesh) CreateFile(tb TB, i int, data []byte) (uint32, error) {
	tb.Helper()
	r := m.Replicas[i]
	// Allocate in this replica's object band; skip numbers already live
	// (adopted from a previous life of this band after a reboot).
	var obj uint32
	for {
		obj = r.ID<<18 | r.nextObj.Add(1)&0x3ffff
		if _, err := r.Rep.Get(obj); err != nil {
			break
		}
	}
	fcap := r.Fact.Register(obj)
	vcap := r.Fact.Register(obj + 1<<20) // version object, never tabled
	tr, err := version.CreateFile(r.St, fcap, vcap, data)
	if err != nil {
		return 0, err
	}
	r.Rep.Put(obj, file.Entry{Cap: fcap, Entry: tr.Root})
	return obj, nil
}

// Commit opens a version of obj through replica i, writes data into the
// root page, commits it and records the CAS in the replicated table. A
// serialisability conflict is not an error (the stream just moves on);
// the bool reports whether the commit landed.
func (m *Mesh) Commit(tb TB, i int, obj uint32, data []byte) (bool, error) {
	tb.Helper()
	r := m.Replicas[i]
	e, err := r.Rep.Get(obj)
	if err != nil {
		return false, err
	}
	cur, err := occ.Current(r.St, e.Entry)
	if err != nil {
		return false, err
	}
	if cur != e.Entry {
		r.Rep.Advance(obj, cur)
	}
	vcap := r.Fact.Register(obj | 1<<21) // throwaway version object
	tr, err := version.CreateVersion(r.St, cur, vcap)
	if err != nil {
		return false, err
	}
	if err := tr.WritePage(nil, data); err != nil {
		return false, err
	}
	if err := r.Com.Commit(tr); err != nil {
		if errors.Is(err, occ.ErrConflict) {
			return false, nil
		}
		return false, err
	}
	r.Rep.CommitCAS(obj, cur, tr.Root)
	return true, nil
}

// Crash kills replica i: its push streams die with their queues (a
// dead process sends nothing more), its handler leaves the network
// (peers mark it down on their next push) and its in-memory table
// state is dropped.
func (m *Mesh) Crash(i int) {
	m.Replicas[i].Rep.Kill()
	m.Net.Crash(m.group(i))
	m.Replicas[i].crashed = true
}

// Reboot brings replica i back with empty state and a fresh identity,
// re-registers its handler and bootstraps: the snapshot pull plus the
// chase rule must re-derive everything it missed.
func (m *Mesh) Reboot(tb TB, i int) {
	tb.Helper()
	r := m.newReplica(tb, m.Replicas[i].ID)
	for _, o := range m.Replicas {
		if o.ID != r.ID {
			r.Rep.AddPeer(o.ID, m.peerTransactor())
		}
	}
	m.Replicas[i] = r
	if err := m.Net.Register(m.group(i), ftab.PortFor(r.ID), r.Rep.Handler()); err != nil {
		tb.Fatalf("re-register replica %d: %v", i, err)
	}
	r.Rep.Bootstrap()
	// Advance the object counter past this band's adopted objects, as
	// server.Shared does after a recovery, so fresh creates cannot
	// collide with the previous life's numbers.
	for _, obj := range r.Rep.Objects() {
		if obj>>18 == r.ID {
			if n := obj & 0x3ffff; n > r.nextObj.Load() {
				r.nextObj.Store(n)
			}
		}
	}
}

// Uncrash re-registers replica i's existing state on the network: a
// healed partition rather than a reboot (Reboot starts empty). The
// replica's own push streams died with Crash; it converges through the
// synchronous snapshot exchange (Heal), not by streaming.
func (m *Mesh) Uncrash(tb TB, i int) {
	tb.Helper()
	r := m.Replicas[i]
	if !r.crashed {
		return
	}
	if err := m.Net.Register(m.group(i), ftab.PortFor(r.ID), r.Rep.Handler()); err != nil {
		tb.Fatalf("uncrash replica %d: %v", i, err)
	}
	r.crashed = false
}

// Remove deletes obj through replica i (tombstone + durable stamp).
func (m *Mesh) Remove(i int, obj uint32) {
	m.Replicas[i].Rep.Remove(obj)
}

// FlushAll drains every live replica's asynchronous push streams.
func (m *Mesh) FlushAll(tb TB) {
	tb.Helper()
	for _, r := range m.Replicas {
		if r.crashed {
			continue
		}
		if !r.Rep.Flush(30 * time.Second) {
			tb.Errorf("replica %d: push streams did not drain", r.ID)
		}
	}
}

// HealAll quiesces the mesh before convergence checks: the async push
// streams are flushed (so nothing is still on the wire), every live
// replica runs its heal pass (rejoining down peers by snapshot
// exchange), and the streams are flushed again (heal marks peers up,
// so mutations that raced the heal may have queued behind it).
func (m *Mesh) HealAll(tb TB) {
	tb.Helper()
	m.FlushAll(tb)
	for _, r := range m.Replicas {
		if r.crashed {
			continue
		}
		if _, err := r.Rep.Heal(); err != nil {
			tb.Logf("heal: %v", err)
		}
	}
	m.FlushAll(tb)
}

// CheckConverged asserts the convergence contract described in the
// package doc.
func (m *Mesh) CheckConverged(tb TB) {
	tb.Helper()
	var live []*Replica
	for _, r := range m.Replicas {
		if !r.crashed {
			live = append(live, r)
		}
	}
	if len(live) == 0 {
		tb.Fatalf("no live replicas to check")
	}
	// 1. Byte-equal fingerprints across live replicas.
	want := ftab.Fingerprint(live[0].Rep)
	for _, r := range live[1:] {
		if got := ftab.Fingerprint(r.Rep); got != want {
			tb.Errorf("replica %d fingerprint %s != replica %d fingerprint %s\n%v\nvs\n%v",
				r.ID, got, live[0].ID, want, r.Rep.Entries(), live[0].Rep.Entries())
		}
	}
	// 2. Every entry root is the head of its storage chain.
	for _, r := range live {
		for _, obj := range r.Rep.Objects() {
			e, err := r.Rep.Get(obj)
			if err != nil {
				tb.Errorf("replica %d object %d: %v", r.ID, obj, err)
				continue
			}
			head, err := occ.Current(r.St, e.Entry)
			if err != nil {
				tb.Errorf("replica %d object %d root %d: %v", r.ID, obj, e.Entry, err)
				continue
			}
			if head != e.Entry {
				tb.Errorf("replica %d object %d: entry %d but storage head %d", r.ID, obj, e.Entry, head)
			}
		}
	}
	// 3. Object set matches the reference single-map table rebuilt from
	// the §4 recovery scan (note: the scan also surfaces files whose
	// creating replica crashed before replicating them; those may be
	// missing from the mesh, which is exactly what a recovery-scan
	// adoption on reboot repairs — so only check the subset relation).
	ref, err := file.Rebuild(version.NewStore(m.Store, m.Acct))
	if err != nil {
		tb.Fatalf("reference rebuild: %v", err)
	}
	refObjs := make(map[uint32]bool)
	for _, obj := range ref.Objects() {
		refObjs[obj] = true
	}
	for _, obj := range live[0].Rep.Objects() {
		if !refObjs[obj] {
			tb.Errorf("object %d in mesh but not on storage", obj)
		}
	}
}

// Fuzz drives one seeded, concurrent scenario against a mesh: workers
// (one per replica) create and commit against a shared file set, one
// replica optionally crashes and reboots mid-stream, and the mesh must
// converge after quiesce. The seed also picks the stream tuning, so
// the corpus exercises backpressure coalescing and overflow (tiny
// queues), injected wire delays (cross-origin reordering), and frame
// accumulation windows alongside the default shape. Used by both the
// table-driven test and the fuzz target.
func Fuzz(tb TB, seed int64, replicas, files, steps int, crash bool) {
	var tu Tune
	switch seed & 3 {
	case 1:
		// Tiny queue and batch: every worker burst overflows, forcing
		// per-object CAS coalescing and drop-to-snapshot catch-up.
		tu.PushBatch, tu.PushQueue = 2, 4
	case 2:
		// Injected wire latency: frames from different origins overtake
		// each other freely.
		var mu sync.Mutex
		rng := rand.New(rand.NewSource(seed))
		tu.Delay = func() time.Duration {
			mu.Lock()
			defer mu.Unlock()
			return time.Duration(rng.Intn(200)) * time.Microsecond
		}
	case 3:
		tu.PushWindow = 100 * time.Microsecond
	}
	m := NewTuned(tb, replicas, tu)
	// A shared file set, created through different replicas.
	var objs []uint32
	for f := 0; f < files; f++ {
		obj, err := m.CreateFile(tb, f%replicas, []byte(fmt.Sprintf("file %d", f)))
		if err != nil {
			tb.Fatalf("create file %d: %v", f, err)
		}
		objs = append(objs, obj)
	}
	m.HealAll(tb)

	var wg sync.WaitGroup
	var crashMu sync.Mutex
	crashedAt := -1
	for w := 0; w < replicas; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for s := 0; s < steps; s++ {
				crashMu.Lock()
				if crashedAt == w {
					crashMu.Unlock()
					return
				}
				obj := objs[rng.Intn(len(objs))]
				crashMu.Unlock()
				switch rng.Intn(10) {
				case 0:
					if o, err := m.CreateFile(tb, w, []byte(fmt.Sprintf("w%d s%d", w, s))); err == nil {
						crashMu.Lock()
						objs = append(objs, o)
						crashMu.Unlock()
					}
				case 1:
					m.Replicas[w].Rep.MarkSuper(obj)
				default:
					if _, err := m.Commit(tb, w, obj, []byte(fmt.Sprintf("w%d s%d", w, s))); err != nil {
						// A replica racing a crash can see transient
						// errors; the convergence check is the oracle.
						continue
					}
				}
				if crash && w == 0 && s == steps/2 {
					victim := replicas - 1
					crashMu.Lock()
					if crashedAt == -1 {
						crashedAt = victim
						m.Crash(victim)
					}
					crashMu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()

	if crash {
		crashMu.Lock()
		victim := crashedAt
		crashMu.Unlock()
		if victim >= 0 {
			m.Reboot(tb, victim)
		}
	}
	m.HealAll(tb)
	m.CheckConverged(tb)
}
