package segstore

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/block"
	"repro/internal/disk"
)

// The contract tests drive the in-memory block.Server and segstore
// through identical operation sequences and require identical outcomes:
// same success/failure classification (by sentinel error), same data,
// same allocation results, same recovery scans. Whatever the file
// service layers can observe through block.Store must not distinguish
// the backends.

// contractOp is one step of a scripted sequence.
type contractOp struct {
	op    string // alloc, write, read, free, lock, unlock, recover
	acct  block.Account
	n     int    // index into previously allocated blocks (-1: bogus block)
	data  string // payload for alloc/write
	check func(t *testing.T, err error)
}

// classify reduces an error to the contract-visible sentinel.
func classify(err error) error {
	for _, s := range []error{block.ErrNoSpace, block.ErrNotAllocated, block.ErrNotOwner,
		block.ErrLocked, block.ErrNotLocked} {
		if errors.Is(err, s) {
			return s
		}
	}
	if err != nil {
		return errors.New("other")
	}
	return nil
}

// newPair builds both backends with the same capacity and block size.
func newPair(t *testing.T, capacity, blockSize int) (*block.Server, *Store) {
	t.Helper()
	mem := block.NewServer(disk.MustNew(disk.Geometry{Blocks: capacity + 1, BlockSize: blockSize}))
	seg, err := Open(t.TempDir(), Options{BlockSize: blockSize, Capacity: capacity, SegmentRecords: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { seg.Close() })
	return mem, seg
}

// runScript applies ops to both stores in lockstep, comparing outcomes.
func runScript(t *testing.T, mem *block.Server, seg *Store, ops []contractOp) {
	t.Helper()
	var memBlocks, segBlocks []block.Num
	pick := func(blocks []block.Num, i int) block.Num {
		if i < 0 || i >= len(blocks) {
			return block.Num(4000) // never allocated
		}
		return blocks[i]
	}
	for i, op := range ops {
		var memErr, segErr error
		var memData, segData []byte
		switch op.op {
		case "alloc":
			var mn, sn block.Num
			mn, memErr = mem.Alloc(op.acct, []byte(op.data))
			sn, segErr = seg.Alloc(op.acct, []byte(op.data))
			if (memErr == nil) != (segErr == nil) {
				t.Fatalf("op %d alloc: mem err %v, seg err %v", i, memErr, segErr)
			}
			if memErr == nil {
				memBlocks = append(memBlocks, mn)
				segBlocks = append(segBlocks, sn)
			}
		case "write":
			memErr = mem.Write(op.acct, pick(memBlocks, op.n), []byte(op.data))
			segErr = seg.Write(op.acct, pick(segBlocks, op.n), []byte(op.data))
		case "read":
			memData, memErr = mem.Read(op.acct, pick(memBlocks, op.n))
			segData, segErr = seg.Read(op.acct, pick(segBlocks, op.n))
		case "free":
			memErr = mem.Free(op.acct, pick(memBlocks, op.n))
			segErr = seg.Free(op.acct, pick(segBlocks, op.n))
		case "lock":
			memErr = mem.Lock(op.acct, pick(memBlocks, op.n))
			segErr = seg.Lock(op.acct, pick(segBlocks, op.n))
		case "unlock":
			memErr = mem.Unlock(op.acct, pick(memBlocks, op.n))
			segErr = seg.Unlock(op.acct, pick(segBlocks, op.n))
		case "recover":
			var mr, sr []block.Num
			mr, memErr = mem.Recover(op.acct)
			sr, segErr = seg.Recover(op.acct)
			if len(mr) != len(sr) {
				t.Fatalf("op %d recover(%d): mem %d blocks, seg %d blocks", i, op.acct, len(mr), len(sr))
			}
		default:
			t.Fatalf("op %d: unknown op %q", i, op.op)
		}
		if mc, sc := classify(memErr), classify(segErr); !errors.Is(mc, sc) && (mc != nil || sc != nil) {
			t.Fatalf("op %d %s: mem %v, seg %v", i, op.op, memErr, segErr)
		}
		if op.op == "read" && memErr == nil && !bytes.Equal(memData, segData) {
			t.Fatalf("op %d read: backends disagree on contents (%q vs %q)", i, memData[:8], segData[:8])
		}
		if op.check != nil {
			op.check(t, segErr)
		}
	}
}

func TestContractTable(t *testing.T) {
	wantErr := func(sentinel error) func(*testing.T, error) {
		return func(t *testing.T, err error) {
			t.Helper()
			if !errors.Is(err, sentinel) {
				t.Fatalf("err = %v, want %v", err, sentinel)
			}
		}
	}
	mem, seg := newPair(t, 64, 128)
	runScript(t, mem, seg, []contractOp{
		{op: "alloc", acct: 1, data: "alpha"},
		{op: "alloc", acct: 1, data: "beta"},
		{op: "alloc", acct: 2, data: "gamma"},
		{op: "read", acct: 1, n: 0},
		{op: "read", acct: 2, n: 0, check: wantErr(block.ErrNotOwner)},
		{op: "read", acct: 1, n: -1, check: wantErr(block.ErrNotAllocated)},
		{op: "write", acct: 1, n: 0, data: "alpha-2"},
		{op: "read", acct: 1, n: 0},
		{op: "lock", acct: 1, n: 1},
		{op: "lock", acct: 1, n: 1, check: wantErr(block.ErrLocked)},
		{op: "lock", acct: 2, n: 1, check: wantErr(block.ErrNotOwner)},
		{op: "unlock", acct: 1, n: 1},
		{op: "unlock", acct: 1, n: 1, check: wantErr(block.ErrNotLocked)},
		{op: "free", acct: 2, n: 1, check: wantErr(block.ErrNotOwner)},
		{op: "free", acct: 1, n: 1},
		{op: "read", acct: 1, n: 1, check: wantErr(block.ErrNotAllocated)},
		{op: "write", acct: 1, n: 1, data: "x", check: wantErr(block.ErrNotAllocated)},
		{op: "recover", acct: 1},
		{op: "recover", acct: 2},
		{op: "recover", acct: 3},
		{op: "alloc", acct: 3, data: "delta"},
		{op: "recover", acct: 3},
	})
}

func TestContractExhaustion(t *testing.T) {
	mem, seg := newPair(t, 4, 64)
	var ops []contractOp
	for i := 0; i < 4; i++ {
		ops = append(ops, contractOp{op: "alloc", acct: 1, data: fmt.Sprint(i)})
	}
	ops = append(ops,
		contractOp{op: "alloc", acct: 1, data: "over", check: func(t *testing.T, err error) {
			t.Helper()
			if !errors.Is(err, block.ErrNoSpace) {
				t.Fatalf("err = %v, want ErrNoSpace", err)
			}
		}},
		contractOp{op: "free", acct: 1, n: 2},
		contractOp{op: "alloc", acct: 1, data: "reuse"},
		contractOp{op: "recover", acct: 1},
	)
	runScript(t, mem, seg, ops)
}

// FuzzContract feeds random operation scripts to both backends. The
// seed corpus runs under plain `go test`; `go test -fuzz=FuzzContract`
// explores further.
func FuzzContract(f *testing.F) {
	f.Add([]byte{0x00, 0x10, 0x21, 0x32, 0x43, 0x04, 0x15})
	f.Add([]byte{0x00, 0x00, 0x00, 0x50, 0x50, 0x30, 0x30, 0x60})
	f.Add([]byte{0x00, 0x41, 0x41, 0x11, 0x21, 0x31, 0x01, 0x51, 0x11})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 256 {
			script = script[:256]
		}
		mem, seg := newPair(t, 16, 64)
		var ops []contractOp
		for i, b := range script {
			// Low nibble: operation. High nibble: block index (alloc:
			// payload seed; the account alternates with the index so
			// ownership violations get exercised too).
			idx := int(b >> 4)
			acct := block.Account(1 + idx%2)
			switch b & 0x0F {
			case 0, 1:
				ops = append(ops, contractOp{op: "alloc", acct: acct, data: fmt.Sprintf("p%d-%d", i, idx)})
			case 2:
				ops = append(ops, contractOp{op: "write", acct: acct, n: idx, data: fmt.Sprintf("w%d", i)})
			case 3:
				ops = append(ops, contractOp{op: "read", acct: acct, n: idx})
			case 4:
				ops = append(ops, contractOp{op: "free", acct: acct, n: idx})
			case 5:
				ops = append(ops, contractOp{op: "lock", acct: acct, n: idx})
			case 6:
				ops = append(ops, contractOp{op: "unlock", acct: acct, n: idx})
			default:
				ops = append(ops, contractOp{op: "recover", acct: acct})
			}
		}
		runScript(t, mem, seg, ops)
	})
}
