package segstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/block"
)

// --- crash-recovery matrix at four lanes ---

// fourLaneStore builds a K=4 store with enough records that every lane
// holds several sealed segments, closes it cleanly, and reports what
// was written and which lane each block's records live in.
func fourLaneStore(t *testing.T) (dir string, want map[block.Num][]byte, laneOf map[block.Num]int) {
	t.Helper()
	dir = t.TempDir()
	s, err := Open(dir, Options{BlockSize: 64, SegmentRecords: 4, LogShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	want = make(map[block.Num][]byte)
	laneOf = make(map[block.Num]int)
	for i := 0; i < 64; i++ {
		payload := []byte(fmt.Sprintf("block %d", i))
		n, err := s.Alloc(1, payload)
		if err != nil {
			t.Fatal(err)
		}
		want[n] = payload
		laneOf[n] = s.laneIndex(n)
	}
	// The hash must actually spread 64 blocks over 4 lanes; the matrix
	// below is vacuous otherwise.
	perLane := make([]int, 4)
	for _, l := range laneOf {
		perLane[l]++
	}
	for l, c := range perLane {
		if c == 0 {
			t.Fatalf("lane %d got no blocks of 64: routing hash broken (%v)", l, perLane)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, want, laneOf
}

func reopenFour(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, Options{BlockSize: 64, SegmentRecords: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	if got := s.Lanes(); got != 4 {
		t.Fatalf("reopened with %d lanes, want the pinned 4", got)
	}
	return s
}

// lastSegPath finds a lane's highest-numbered (tail) segment file.
func lastSegPath(t *testing.T, dir string, lane int) string {
	t.Helper()
	ids, err := listSegments(laneDir(dir, lane))
	if err != nil || len(ids) == 0 {
		t.Fatalf("lane %d segments: %v (%d found)", lane, err, len(ids))
	}
	return segPath(laneDir(dir, lane), ids[len(ids)-1])
}

func TestFourLaneReopenByteEqual(t *testing.T) {
	dir, want, _ := fourLaneStore(t)
	s := reopenFour(t, dir)
	if rl := s.RecreatedLanes(); len(rl) != 0 {
		t.Fatalf("healthy reopen reports recreated lanes %v", rl)
	}
	for n, data := range want {
		got, err := s.Read(1, n)
		if err != nil {
			t.Fatalf("block %d: %v", n, err)
		}
		if !bytes.Equal(got[:len(data)], data) || !bytes.Equal(got[len(data):], make([]byte, 64-len(data))) {
			t.Fatalf("block %d reads %q, want zero-padded %q", n, got, data)
		}
	}
}

func TestFourLaneTornTailOneLane(t *testing.T) {
	dir, want, _ := fourLaneStore(t)
	// Tear lane 1's log tail: half a record of garbage, as a crash
	// mid-batch would leave. Nothing acknowledged is in it.
	path := lastSegPath(t, dir, 1)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := recordSize(64) / 2
	if _, err := f.Write(make([]byte, torn)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s := reopenFour(t, dir)
	if st := s.Stats(); st.TruncatedBytes != uint64(torn) {
		t.Fatalf("truncated %d bytes, want %d", st.TruncatedBytes, torn)
	}
	// Every acknowledged block — lane 1's included — survives intact.
	for n, data := range want {
		got, err := s.Read(1, n)
		if err != nil {
			t.Fatalf("block %d: %v", n, err)
		}
		if !bytes.Equal(got[:len(data)], data) {
			t.Fatalf("block %d reads %q, want %q", n, got[:len(data)], data)
		}
	}
}

func TestFourLaneMissingLaneDir(t *testing.T) {
	dir, want, laneOf := fourLaneStore(t)
	// Lose lane 2 wholesale (a dead disk stripe, an errant rm). The
	// store must come back up: lane 2's blocks are gone, every other
	// lane's are intact.
	if err := os.RemoveAll(laneDir(dir, 2)); err != nil {
		t.Fatal(err)
	}
	s := reopenFour(t, dir)
	// The loss is surfaced, not silent: the recreated lane shows up in
	// stats and in RecreatedLanes so an operator can restore from a
	// replica instead of writing on.
	if st := s.Stats(); st.LanesRecreated != 1 {
		t.Fatalf("LanesRecreated = %d, want 1", st.LanesRecreated)
	}
	if rl := s.RecreatedLanes(); len(rl) != 1 || rl[0] != 2 {
		t.Fatalf("RecreatedLanes() = %v, want [2]", rl)
	}
	for n, data := range want {
		got, err := s.Read(1, n)
		if laneOf[n] == 2 {
			if !errors.Is(err, block.ErrNotAllocated) {
				t.Fatalf("block %d in lost lane: err = %v, want ErrNotAllocated", n, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("block %d in surviving lane %d: %v", n, laneOf[n], err)
		}
		if !bytes.Equal(got[:len(data)], data) {
			t.Fatalf("block %d reads %q, want %q", n, got[:len(data)], data)
		}
	}
	// And the revived lane accepts new writes.
	if _, err := s.Alloc(1, []byte("after the loss")); err != nil {
		t.Fatal(err)
	}
}

func TestFourLaneMidLogCorruptionRefused(t *testing.T) {
	dir, _, _ := fourLaneStore(t)
	// Damage a record in lane 2's FIRST segment: mid-log, not a torn
	// tail, so the open must refuse rather than silently drop
	// acknowledged data — even though lanes 0, 1 and 3 are pristine.
	f, err := os.OpenFile(segPath(laneDir(dir, 2), 1), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, headerSize); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Open(dir, Options{BlockSize: 64, SegmentRecords: 4}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over mid-log corruption in lane 2: err = %v, want ErrCorrupt", err)
	}
}

// TestMissingMetaWithLanesRefused loses the meta file while lane
// directories full of data survive. The open must refuse: writing a
// fresh meta would re-pin the shard count from this process's defaults,
// changing the routing hash and silently orphaning acknowledged records
// in lanes beyond the new count.
func TestMissingMetaWithLanesRefused(t *testing.T) {
	dir, _, _ := fourLaneStore(t)
	if err := os.Remove(filepath.Join(dir, metaName)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{BlockSize: 64, SegmentRecords: 4, LogShards: 4}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with lane data but no meta: err = %v, want ErrCorrupt", err)
	}
}

// --- flat v1 layout migration ---

// TestFlatLayoutMigration doctors a store into the old single-log
// layout — segment files in the top-level directory, a version-1 meta
// line — and reopens it sharded: the records must migrate into lane 0,
// the meta must be rewritten pinning the lane count, and every block
// must read back byte-equal across a further reopen and compaction.
func TestFlatLayoutMigration(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{BlockSize: 64, SegmentRecords: 4, LogShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[block.Num][]byte)
	for i := 0; i < 20; i++ {
		payload := []byte(fmt.Sprintf("v1 block %d", i))
		n, err := s.Alloc(1, payload)
		if err != nil {
			t.Fatal(err)
		}
		want[n] = payload
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Back-convert to the v1 layout: segments at top level, v1 meta.
	ids, err := listSegments(laneDir(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if err := os.Rename(segPath(laneDir(dir, 0), id), segPath(dir, id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Remove(laneDir(dir, 0)); err != nil {
		t.Fatal(err)
	}
	meta := "segstore 1 blocksize 64 segrecords 4\n"
	if err := os.WriteFile(filepath.Join(dir, metaName), []byte(meta), 0o666); err != nil {
		t.Fatal(err)
	}

	// First sharded open: the upgrade.
	s2, err := Open(dir, Options{BlockSize: 64, SegmentRecords: 4, LogShards: 4})
	if err != nil {
		t.Fatalf("open over v1 layout: %v", err)
	}
	if got := s2.Lanes(); got != 4 {
		t.Fatalf("upgraded store has %d lanes, want 4", got)
	}
	if left, _ := listSegments(dir); len(left) != 0 {
		t.Fatalf("%d segment files left at top level after upgrade", len(left))
	}
	for n, data := range want {
		got, err := s2.Read(1, n)
		if err != nil {
			t.Fatalf("block %d after upgrade: %v", n, err)
		}
		if !bytes.Equal(got[:len(data)], data) {
			t.Fatalf("block %d reads %q, want %q", n, got[:len(data)], data)
		}
	}
	// New writes land in hash lanes while old records sit in lane 0;
	// churn one block so its history spans lanes, then compact.
	var churn block.Num
	for n := range want {
		churn = n
		break
	}
	for i := 0; i < 30; i++ {
		want[churn] = []byte(fmt.Sprintf("churned %d", i))
		if err := s2.Write(1, churn, want[churn]); err != nil {
			t.Fatal(err)
		}
	}
	for {
		ok, err := s2.CompactOnce()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	// Crash (no Close) and reopen: the migrated meta must have been
	// durable from the first sharded open, and the merged per-lane scan
	// must pick each block's newest record across lanes.
	s2.Abandon()
	s3, err := Open(dir, Options{BlockSize: 64, SegmentRecords: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := s3.Lanes(); got != 4 {
		t.Fatalf("re-reopened store has %d lanes, want 4", got)
	}
	for n, data := range want {
		got, err := s3.Read(1, n)
		if err != nil {
			t.Fatalf("block %d after second reopen: %v", n, err)
		}
		if !bytes.Equal(got[:len(data)], data) {
			t.Fatalf("block %d reads %q, want %q", n, got[:len(data)], data)
		}
	}
}

// --- segment recycling ---

func TestSegmentRecycling(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{BlockSize: 32, SegmentRecords: 4, LogShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.Alloc(1, []byte{0})
	if err != nil {
		t.Fatal(err)
	}
	churn := func(rounds int) {
		t.Helper()
		for i := 1; i <= rounds; i++ {
			if err := s.Write(1, n, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	compactAll := func() {
		t.Helper()
		for {
			ok, err := s.CompactOnce()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				return
			}
		}
	}
	churn(40)
	compactAll()
	// Compacted segments parked in the pool, visible on disk.
	poolIDs, err := listPool(laneDir(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(poolIDs) == 0 {
		t.Fatal("no pool files after compaction")
	}
	if len(poolIDs) > maxPool {
		t.Fatalf("%d pool files, cap is %d", len(poolIDs), maxPool)
	}
	// Further churn rotates into recycled files instead of creating new
	// ones.
	churn(40)
	if st := s.Stats(); st.Recycles == 0 {
		t.Fatalf("no segment recycled across %d rotations: %+v", 10, st)
	}
	if data, err := s.Read(1, n); err != nil || data[0] != 40 {
		t.Fatalf("block reads %v (err %v), want 40", data[:1], err)
	}
	// Crash with files still pooled; the reopen adopts (and empties)
	// them, and they are reused again.
	compactAll()
	s.Abandon()
	s2, err := Open(dir, Options{BlockSize: 32, SegmentRecords: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if data, err := s2.Read(1, n); err != nil || data[0] != 40 {
		t.Fatalf("after reopen block reads %v (err %v), want 40", data, err)
	}
	for i := 41; i <= 80; i++ {
		if err := s2.Write(1, n, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if st := s2.Stats(); st.Recycles == 0 {
		t.Fatal("adopted pool files never reused after reopen")
	}
	if data, err := s2.Read(1, n); err != nil || data[0] != 80 {
		t.Fatalf("block reads %v (err %v), want 80", data, err)
	}
}

// --- Close vs compaction ---

// TestCloseDuringCompaction races Close against an in-flight compaction
// pass, repeatedly: the compactor must neither write to a recycled
// segment after the store is closed nor leave the lane locks held (the
// reopen would fail if it did).
func TestCloseDuringCompaction(t *testing.T) {
	for iter := 0; iter < 15; iter++ {
		dir := t.TempDir()
		s, err := Open(dir, Options{BlockSize: 32, SegmentRecords: 4, LogShards: 2, Sync: SyncNone})
		if err != nil {
			t.Fatal(err)
		}
		n, err := s.Alloc(1, []byte{0})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 60; i++ {
			if err := s.Write(1, n, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Hammer compaction until the closing store refuses.
			for {
				if _, err := s.CompactOnce(); err != nil {
					return
				}
				s.mu.Lock()
				closed := s.closed
				s.mu.Unlock()
				if closed {
					return
				}
			}
		}()
		if iter%3 == 0 {
			time.Sleep(time.Duration(iter) * 100 * time.Microsecond)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("iter %d: close during compaction: %v", iter, err)
		}
		wg.Wait()
		// The lane locks must be free and the log intact.
		s2, err := Open(dir, Options{BlockSize: 32, SegmentRecords: 4, Sync: SyncNone})
		if err != nil {
			t.Fatalf("iter %d: reopen after racing close: %v", iter, err)
		}
		if data, err := s2.Read(1, n); err != nil || data[0] != 60 {
			t.Fatalf("iter %d: block reads %v (err %v), want 60", iter, data[:1], err)
		}
		s2.Close()
	}
}

// --- background compaction error surfacing ---

// TestCompactErrorSurfaced corrupts the only live record of a
// compaction victim: the background pass must record the failure in
// CompactErrors/LastCompactError instead of retrying forever in
// silence, and a later successful pass must clear it again.
func TestCompactErrorSurfaced(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{BlockSize: 32, SegmentRecords: 4, LogShards: 1, Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	a, err := s.Alloc(1, []byte{1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Alloc(1, []byte{2})
	if err != nil {
		t.Fatal(err)
	}
	// Two more writes seal segment 1 (a's alloc, b's alloc, two of a's
	// rewrites); a third rolls to segment 2, leaving b's record the only
	// live one in the sealed victim.
	for i := 0; i < 3; i++ {
		if err := s.Write(1, a, []byte{byte(3 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	path := segPath(laneDir(dir, 0), 1)
	off := int64(recordSize(32) + headerSize) // first payload byte of b's record
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	orig := make([]byte, 1)
	if _, err := f.ReadAt(orig, off); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{orig[0] ^ 0xFF}, off); err != nil {
		t.Fatal(err)
	}
	if did := s.compactLane(0); did {
		t.Fatal("compaction reclaimed a segment whose live record is corrupt")
	}
	if st := s.Stats(); st.CompactErrors != 1 {
		t.Fatalf("CompactErrors = %d, want 1", st.CompactErrors)
	}
	if err := s.LastCompactError(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("LastCompactError() = %v, want ErrCorrupt", err)
	}
	// Heal the record: the next pass reclaims the victim and clears the
	// sticky error.
	if _, err := f.WriteAt(orig, off); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if did := s.compactLane(0); !did {
		t.Fatal("compaction did not reclaim the healed victim")
	}
	if err := s.LastCompactError(); err != nil {
		t.Fatalf("LastCompactError() after successful pass = %v, want nil", err)
	}
	if st := s.Stats(); st.CompactErrors != 1 {
		t.Fatalf("CompactErrors after successful pass = %d, want still 1", st.CompactErrors)
	}
	if data, err := s.Read(1, b); err != nil || data[0] != 2 {
		t.Fatalf("block b reads %v (err %v) after relocation, want 2", data[:1], err)
	}
}

// --- adaptive group-commit window ---

func TestAdaptiveWindowAdjust(t *testing.T) {
	s := openTest(t, Options{BlockSize: 32, LogShards: 1, SyncWindow: 2 * time.Millisecond})
	l := s.lanes[0]
	// (No writes in flight: the appender is parked on its empty queue,
	// so poking the window from here cannot race it.)
	if l.window != 0 {
		t.Fatalf("initial window %v, want 0", l.window)
	}
	// Filling batches widen the window toward the cap...
	for i := 0; i < 12; i++ {
		l.adapt(8)
	}
	if l.window != 2*time.Millisecond {
		t.Fatalf("window after sustained load %v, want the 2ms cap", l.window)
	}
	// ...a saturated batch holds it...
	l.adapt(maxBatch)
	if l.window != 2*time.Millisecond {
		t.Fatalf("window after saturated batch %v, want unchanged 2ms", l.window)
	}
	// ...and idle batches decay it back to exactly zero.
	for i := 0; i < 12; i++ {
		l.adapt(1)
	}
	if l.window != 0 {
		t.Fatalf("window after idling %v, want 0", l.window)
	}
	st := s.Stats()
	if st.WindowGrows == 0 || st.WindowShrinks == 0 {
		t.Fatalf("window stats not counted: %+v", st)
	}
	if gauges := s.LaneStats(); gauges[0].Window != 0 {
		t.Fatalf("lane gauge window %v, want 0", gauges[0].Window)
	}
}

func TestAdaptiveWindowUnderLoad(t *testing.T) {
	s := openTest(t, Options{BlockSize: 32, LogShards: 1})
	var nums [32]block.Num
	for i := range nums {
		n, err := s.Alloc(1, nil)
		if err != nil {
			t.Fatal(err)
		}
		nums[i] = n
	}
	var wg sync.WaitGroup
	for w := range nums {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 6; r++ {
				if err := s.Write(1, nums[w], []byte{byte(w)}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// 32 concurrent writers against one lane must have produced at
	// least one batch big enough to widen the window.
	if st := s.Stats(); st.WindowGrows == 0 {
		t.Logf("stats: %+v", st)
		t.Skip("no batch reached the growth threshold on this machine; windowing not exercised")
	}
	// The window histogram saw every group-commit decision.
	h := s.Histograms()
	if h.Window.Snapshot().Count == 0 {
		t.Fatal("window histogram empty after group commits")
	}
	if h.BatchPages.Snapshot().Count == 0 {
		t.Fatal("batch-pages histogram empty after group commits")
	}
}

// --- hot-path allocation budget ---

// BenchmarkAppend measures the per-write allocation budget of the
// append path: pooled requests, the per-lane encode arena and the
// reused completion channel must keep it at ≤ 1 alloc/op (the
// per-batch placement slice).
func BenchmarkAppend(b *testing.B) {
	s, err := Open(b.TempDir(), Options{BlockSize: 4096, SegmentRecords: 1 << 20, LogShards: 1, Sync: SyncNone})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	n, err := s.Alloc(1, nil)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Write(1, n, payload); err != nil {
			b.Fatal(err)
		}
	}
}
