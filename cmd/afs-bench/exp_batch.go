package main

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/block"
	"repro/internal/capability"
	"repro/internal/disk"
	"repro/internal/rpc"
	"repro/internal/segstore"
)

// countingTransactor counts round trips through an rpc.Transactor.
type countingTransactor struct {
	inner rpc.Transactor
	n     atomic.Int64
}

func (c *countingTransactor) Transact(port capability.Port, req *rpc.Message) (*rpc.Message, error) {
	c.n.Add(1)
	return c.inner.Transact(port, req)
}

// runE11 measures the multi-block operations end-to-end: round trips
// per 64-page commit-style flush over a TCP-mounted block store
// (batched vs unbatched), fsyncs per 64-block segstore batch (batched
// vs 64 independent writes), and flush throughput on every backend. No
// figure in the paper — the paper's transactions are single-page; this
// table prices the batch path the production system lives on.
func runE11() error {
	const pages = 64
	const blockSize = 4096
	payload := bytes.Repeat([]byte{0xA5}, blockSize)
	payloads := make([][]byte, pages)
	for i := range payloads {
		payloads[i] = payload
	}

	// flush performs the commit-shaped write-out (allocate shadow
	// blocks, write their contents) and then frees them so trials
	// don't exhaust the store. Batched uses the MultiStore path; the
	// unbatched arm loops single ops.
	flush := func(st block.Store, batched bool) error {
		var nums []block.Num
		var err error
		if batched {
			if nums, err = block.AllocMulti(st, 1, make([][]byte, pages)); err != nil {
				return err
			}
			if err := block.WriteMulti(st, 1, nums, payloads); err != nil {
				return err
			}
			return block.FreeMulti(st, 1, nums)
		}
		for i := 0; i < pages; i++ {
			n, err := st.Alloc(1, nil)
			if err != nil {
				return err
			}
			nums = append(nums, n)
		}
		for _, n := range nums {
			if err := st.Write(1, n, payload); err != nil {
				return err
			}
		}
		for _, n := range nums {
			if err := st.Free(1, n); err != nil {
				return err
			}
		}
		return nil
	}

	// --- round trips over TCP ---
	tcpSrv, err := rpc.NewTCPServer("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer tcpSrv.Close()
	backing := block.NewServer(disk.MustNew(disk.Geometry{Blocks: 1 << 12, BlockSize: blockSize}))
	port := capability.NewPort().Public()
	tcpSrv.Register(port, block.Serve(backing))
	res := rpc.NewResolver()
	res.Set(port, tcpSrv.Addr())
	tcpCli := rpc.NewTCPClient(res)
	defer tcpCli.Close()
	counter := &countingTransactor{inner: tcpCli}
	remote, err := block.Dial(counter, port)
	if err != nil {
		return err
	}

	fmt.Printf("\n%d-page flush (alloc+write, 4K pages) over a TCP-mounted block store:\n", pages)
	header("mode", "round trips", "ms/flush", "pages/s")
	var tripsByMode [2]int64
	for _, batched := range []bool{false, true} {
		// Warm once, then time a few trials.
		if err := flush(remote, batched); err != nil {
			return err
		}
		const trials = 20
		start := counter.n.Load()
		t0 := time.Now()
		for i := 0; i < trials; i++ {
			if err := flush(remote, batched); err != nil {
				return err
			}
		}
		elapsed := time.Since(t0)
		trips := (counter.n.Load() - start) / trials
		mode := "unbatched"
		if batched {
			mode = "batched"
			tripsByMode[1] = trips
		} else {
			tripsByMode[0] = trips
		}
		msPer := float64(elapsed.Microseconds()) / 1000 / trials
		row(mode, trips, msPer, float64(pages*trials)/elapsed.Seconds())
		record("e11", "tcp_roundtrips_"+mode, float64(trips))
		record("e11", "tcp_pages_per_sec_"+mode, float64(pages*trials)/elapsed.Seconds())
	}
	ratio := float64(tripsByMode[0]) / float64(tripsByMode[1])
	fmt.Printf("round-trip reduction for a %d-page commit: %.1fx\n", pages, ratio)
	record("e11", "tcp_roundtrip_ratio", ratio)

	// --- fsyncs per batch on the durable store ---
	seg, cleanup, err := newSegStoreMode(segstore.SyncGroup)
	if err != nil {
		return err
	}
	defer cleanup()
	nums, err := seg.AllocMulti(1, make([][]byte, pages))
	if err != nil {
		return err
	}
	fmt.Printf("\nfsyncs for %d durable 4K writes (segstore, group commit, one writer):\n", pages)
	header("mode", "fsyncs", "ms total", "writes/fsync")
	s0 := seg.Stats().Syncs
	t0 := time.Now()
	for _, n := range nums {
		if err := seg.Write(1, n, payload); err != nil {
			return err
		}
	}
	elapsed := time.Since(t0)
	individual := seg.Stats().Syncs - s0
	row("independent", individual, float64(elapsed.Microseconds())/1000,
		fmt.Sprintf("%.1f", float64(pages)/float64(individual)))
	record("e11", "seg_fsyncs_individual", float64(individual))

	s0 = seg.Stats().Syncs
	t0 = time.Now()
	if err := seg.WriteMulti(1, nums, payloads); err != nil {
		return err
	}
	elapsed = time.Since(t0)
	batchedSyncs := seg.Stats().Syncs - s0
	row("batched", batchedSyncs, float64(elapsed.Microseconds())/1000,
		fmt.Sprintf("%.1f", float64(pages)/float64(batchedSyncs)))
	record("e11", "seg_fsyncs_batched", float64(batchedSyncs))

	// --- flush throughput per backend ---
	segB, cleanupB, err := newSegStoreMode(segstore.SyncGroup)
	if err != nil {
		return err
	}
	defer cleanupB()
	mem := block.NewServer(disk.MustNew(disk.Geometry{Blocks: 1 << 12, BlockSize: blockSize}))
	type arm struct {
		name string
		st   block.Store
	}
	fmt.Printf("\n%d-page flush throughput by backend (batched vs unbatched):\n", pages)
	header("backend", "mode", "ms/flush", "pages/s")
	for _, a := range []arm{{"mem", mem}, {"seg/group", segB}, {"tcp-mem", remote}} {
		for _, batched := range []bool{false, true} {
			if err := flush(a.st, batched); err != nil {
				return err
			}
			const trials = 10
			t0 := time.Now()
			for i := 0; i < trials; i++ {
				if err := flush(a.st, batched); err != nil {
					return err
				}
			}
			elapsed := time.Since(t0)
			mode := "unbatched"
			if batched {
				mode = "batched"
			}
			pps := float64(pages*trials) / elapsed.Seconds()
			row(a.name, mode, float64(elapsed.Microseconds())/1000/trials, pps)
			record("e11", fmt.Sprintf("%s_pages_per_sec_%s", a.name, mode), pps)
		}
	}
	fmt.Println("\nBatching collapses per-page round trips into per-frame ones and per-")
	fmt.Println("record fsyncs into per-batch ones; the TCP and durable arms gain the")
	fmt.Println("most because their per-operation constant is the largest.")
	return nil
}
