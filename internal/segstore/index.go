package segstore

import (
	"fmt"
	"sort"

	"repro/internal/block"
)

// loc names a record's position: which lane, which segment within the
// lane, and the byte offset of the record within it. The zero loc means
// "no durable record yet" (a reservation made by an in-flight Alloc or
// Claim) — real records always have seg >= 1, so the zero value cannot
// collide with a location in lane 0.
type loc struct {
	lane int
	seg  uint64
	off  int64
}

// segKey names one segment file globally: segment ids are per-lane
// counters, so the pair is the unit the live-record accounting (and the
// compactor's victim choice) works in.
type segKey struct {
	lane int
	seg  uint64
}

// key is the segment the loc points into.
func (l loc) key() segKey { return segKey{lane: l.lane, seg: l.seg} }

// entry is one allocated block's index row. Lock bits are volatile
// commit-section state (§5.2) and are deliberately NOT persisted: a
// restart clears them, exactly like block.Server.ClearLocks after a
// crash.
type entry struct {
	loc    loc
	owner  block.Account
	locked bool
}

// index is the in-memory map from block number to record location and
// owner. It is rebuilt from the segment scan on open — the store keeps
// no separate metadata about which blocks exist, so the §4 "list blocks
// by account" recovery scan is just a walk of this map. All access is
// under the store's mutex.
type index struct {
	entries map[block.Num]entry
	// live counts the index-referenced (i.e. not yet superseded)
	// records per segment; records-minus-live is a segment's garbage,
	// which drives compaction victim choice.
	live map[segKey]int
	// nextHint speeds allocation scans; correctness does not depend on it.
	nextHint block.Num
}

func newIndex() *index {
	return &index{
		entries:  make(map[block.Num]entry),
		live:     make(map[segKey]int),
		nextHint: 1,
	}
}

// allocNum reserves the lowest free block number at or after the hint
// for account, with no durable record yet.
func (x *index) allocNum(account block.Account, capacity int) (block.Num, error) {
	total := block.Num(capacity) + 1 // block numbers run 1..capacity
	for i := block.Num(0); i < total; i++ {
		n := (x.nextHint + i) % total
		if n == block.NilNum {
			continue
		}
		if _, used := x.entries[n]; !used {
			x.entries[n] = entry{owner: account}
			x.nextHint = n + 1
			return n, nil
		}
	}
	return block.NilNum, block.ErrNoSpace
}

// reserve claims a specific free number with no durable record yet.
func (x *index) reserve(account block.Account, n block.Num) error {
	if _, used := x.entries[n]; used {
		return fmt.Errorf("block %d: already allocated", n)
	}
	x.entries[n] = entry{owner: account}
	return nil
}

// checkOwner verifies account owns n.
func (x *index) checkOwner(account block.Account, n block.Num) error {
	e, ok := x.entries[n]
	if !ok {
		return fmt.Errorf("block %d: %w", n, block.ErrNotAllocated)
	}
	if e.owner != account {
		return fmt.Errorf("block %d owned by %d, access by %d: %w", n, e.owner, account, block.ErrNotOwner)
	}
	return nil
}

// place points n's index row at a new durable record, preserving the
// lock bit and maintaining per-segment live counts. It creates the row
// if needed (replay, or a write racing a free), so replaying the log in
// append order through place/drop reproduces exactly the in-memory
// state the live store had.
func (x *index) place(n block.Num, account block.Account, at loc) {
	e := x.entries[n]
	if e.loc != (loc{}) {
		x.live[e.loc.key()]--
	}
	e.owner = account
	e.loc = at
	x.entries[n] = e
	x.live[at.key()]++
}

// drop removes n's row (a durable free).
func (x *index) drop(n block.Num) {
	e, ok := x.entries[n]
	if !ok {
		return
	}
	if e.loc != (loc{}) {
		x.live[e.loc.key()]--
	}
	delete(x.entries, n)
}

// recover lists account's blocks, sorted: the §4 recovery scan.
func (x *index) recover(account block.Account) []block.Num {
	var out []block.Num
	for n, e := range x.entries {
		if e.owner == account {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// owners copies the allocation table, for companion-style recovery.
func (x *index) owners() map[block.Num]block.Account {
	out := make(map[block.Num]block.Account, len(x.entries))
	for n, e := range x.entries {
		out[n] = e.owner
	}
	return out
}

// clearLocks drops every lock bit.
func (x *index) clearLocks() {
	for n, e := range x.entries {
		if e.locked {
			e.locked = false
			x.entries[n] = e
		}
	}
}
