package segstore

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/block"
	"repro/internal/blocktest"
	"repro/internal/disk"
)

// The contract tests drive the in-memory block.Server and segstore
// through identical operation sequences via the shared harness
// (internal/blocktest) and require identical outcomes. Whatever the
// file service layers can observe through block.Store must not
// distinguish the backends. Every suite runs at each lane count in
// blocktest.ShardCounts(): the log striping must be invisible through
// the block.Store interface.

// newPair builds both backends with the same capacity and block size,
// the segstore striped over the given number of log lanes.
func newPair(t *testing.T, capacity, blockSize, shards int) (*block.Server, *Store) {
	t.Helper()
	mem := block.NewServer(disk.MustNew(disk.Geometry{Blocks: capacity + 1, BlockSize: blockSize}))
	seg, err := Open(t.TempDir(), Options{BlockSize: blockSize, Capacity: capacity, SegmentRecords: 16, LogShards: shards})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { seg.Close() })
	return mem, seg
}

// forEachShardCount runs f as a subtest at every contract lane count.
func forEachShardCount(t *testing.T, f func(t *testing.T, shards int)) {
	for _, k := range blocktest.ShardCounts() {
		t.Run(fmt.Sprintf("shards=%d", k), func(t *testing.T) { f(t, k) })
	}
}

func TestContractTable(t *testing.T) {
	wantErr := func(sentinel error) func(*testing.T, error) {
		return func(t *testing.T, err error) {
			t.Helper()
			if !errors.Is(err, sentinel) {
				t.Fatalf("err = %v, want %v", err, sentinel)
			}
		}
	}
	forEachShardCount(t, func(t *testing.T, shards int) {
		mem, seg := newPair(t, 64, 128, shards)
		blocktest.RunScript(t, mem, seg, []blocktest.Op{
			{Op: "alloc", Acct: 1, Data: "alpha"},
			{Op: "alloc", Acct: 1, Data: "beta"},
			{Op: "alloc", Acct: 2, Data: "gamma"},
			{Op: "read", Acct: 1, N: 0},
			{Op: "read", Acct: 2, N: 0, Check: wantErr(block.ErrNotOwner)},
			{Op: "read", Acct: 1, N: -1, Check: wantErr(block.ErrNotAllocated)},
			{Op: "write", Acct: 1, N: 0, Data: "alpha-2"},
			{Op: "read", Acct: 1, N: 0},
			{Op: "lock", Acct: 1, N: 1},
			{Op: "lock", Acct: 1, N: 1, Check: wantErr(block.ErrLocked)},
			{Op: "lock", Acct: 2, N: 1, Check: wantErr(block.ErrNotOwner)},
			{Op: "unlock", Acct: 1, N: 1},
			{Op: "unlock", Acct: 1, N: 1, Check: wantErr(block.ErrNotLocked)},
			{Op: "free", Acct: 2, N: 1, Check: wantErr(block.ErrNotOwner)},
			{Op: "free", Acct: 1, N: 1},
			{Op: "read", Acct: 1, N: 1, Check: wantErr(block.ErrNotAllocated)},
			{Op: "write", Acct: 1, N: 1, Data: "x", Check: wantErr(block.ErrNotAllocated)},
			{Op: "recover", Acct: 1},
			{Op: "recover", Acct: 2},
			{Op: "recover", Acct: 3},
			{Op: "alloc", Acct: 3, Data: "delta"},
			{Op: "recover", Acct: 3},
		})
	})
}

func TestContractExhaustion(t *testing.T) {
	forEachShardCount(t, func(t *testing.T, shards int) {
		mem, seg := newPair(t, 4, 64, shards)
		var ops []blocktest.Op
		for i := 0; i < 4; i++ {
			ops = append(ops, blocktest.Op{Op: "alloc", Acct: 1, Data: fmt.Sprint(i)})
		}
		ops = append(ops,
			blocktest.Op{Op: "alloc", Acct: 1, Data: "over", Check: func(t *testing.T, err error) {
				t.Helper()
				if !errors.Is(err, block.ErrNoSpace) {
					t.Fatalf("err = %v, want ErrNoSpace", err)
				}
			}},
			blocktest.Op{Op: "free", Acct: 1, N: 2},
			blocktest.Op{Op: "alloc", Acct: 1, Data: "reuse"},
			blocktest.Op{Op: "recover", Acct: 1},
		)
		blocktest.RunScript(t, mem, seg, ops)
	})
}

// TestContractMultiOps drives the four multi-block operations through
// both backends, including the partial-failure semantics of the
// MultiStore contract. At multi-lane counts the batches straddle lanes,
// so the per-lane group split and reassembly is under test too.
func TestContractMultiOps(t *testing.T) {
	forEachShardCount(t, func(t *testing.T, shards int) {
		mem, seg := newPair(t, 16, 64, shards)
		blocktest.MultiOpSuite(t, "mem", mem, 16)
		blocktest.MultiOpSuite(t, "seg", seg, 16)

		// The recovery scans of the two backends must agree exactly.
		for _, acct := range []block.Account{1, 2} {
			mr, _ := mem.Recover(acct)
			sr, _ := seg.Recover(acct)
			if len(mr) != len(sr) {
				t.Fatalf("recover(%d): mem %d blocks, seg %d blocks", acct, len(mr), len(sr))
			}
		}
	})
}

// FuzzContract feeds random operation scripts to both backends, at
// every contract lane count. The seed corpus runs under plain
// `go test`; `go test -fuzz=FuzzContract` explores further.
func FuzzContract(f *testing.F) {
	for _, seed := range blocktest.FuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, script []byte) {
		for _, shards := range blocktest.ShardCounts() {
			mem, seg := newPair(t, 16, 64, shards)
			blocktest.RunScript(t, mem, seg, blocktest.ScriptOps(script))
		}
	})
}
