// Benchmarks E1–E9 (plus E13): one per experiment in EXPERIMENTS.md,
// each keyed to a figure or quantitative claim of the paper (see
// DESIGN.md §4). The cmd/afs-bench tool runs the corresponding
// parameter sweeps and prints the full tables.
package main

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/block"
	"repro/internal/capability"
	"repro/internal/disk"
	"repro/internal/occ"
	"repro/internal/page"
	"repro/internal/segstore"
	"repro/internal/server"
	"repro/internal/stable"
	"repro/internal/version"
	"repro/internal/workload"
)

// newBenchServer builds a standalone file service for benchmarks.
func newBenchServer(b *testing.B, blocks, bsize int) *server.Server {
	b.Helper()
	srv, err := workload.NewService(blocks, bsize)
	if err != nil {
		b.Fatal(err)
	}
	return srv
}

// flatFile creates a file with n child pages and returns its capability.
func flatFile(b *testing.B, srv *server.Server, n int, payload []byte) capability.Capability {
	b.Helper()
	fcap, err := srv.CreateFile(nil)
	if err != nil {
		b.Fatal(err)
	}
	v, err := srv.CreateVersion(fcap, server.CreateVersionOpts{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := srv.InsertPage(v, page.RootPath, i, payload); err != nil {
			b.Fatal(err)
		}
	}
	if err := srv.Commit(v); err != nil {
		b.Fatal(err)
	}
	return fcap
}

// BenchmarkE1PageCodec measures the Fig. 3 page layout codec: one
// encode+decode round trip of a version page with a full reference
// table (the disk format every operation pays for).
func BenchmarkE1PageCodec(b *testing.B) {
	f := capability.NewFactory(capability.NewPort().Public())
	p := &page.Page{
		IsVersion:  true,
		FileCap:    f.Register(1),
		VersionCap: f.Register(2),
		RootFlags:  page.FlagC,
		Data:       make([]byte, 1024),
	}
	for i := 0; i < 64; i++ {
		p.Refs = append(p.Refs, page.Ref{Block: block.Num(i + 1), Flags: page.Flags(0).Set(page.FlagR)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := p.Encode(4096)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := page.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2CopyOnWrite measures the §5.1 differential representation
// (Fig. 4): opening a version of an n-page file, writing one page and
// committing. Cost must track the touched path, not file size.
func BenchmarkE2CopyOnWrite(b *testing.B) {
	for _, n := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("pages=%d", n), func(b *testing.B) {
			srv := newBenchServer(b, 1<<20, 4096)
			fcap := flatFile(b, srv, n, make([]byte, 256))
			payload := make([]byte, 256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v, err := srv.CreateVersion(fcap, server.CreateVersionOpts{})
				if err != nil {
					b.Fatal(err)
				}
				if err := srv.WritePage(v, page.Path{i % n}, payload); err != nil {
					b.Fatal(err)
				}
				if err := srv.Commit(v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3SequentialCommit measures the §5.2 claim that "as long as
// updates are done one after the other, commit always succeeds and
// requires virtually no processing at all": the fast-path commit, and
// the Bauer-principle one-page temporary file.
func BenchmarkE3SequentialCommit(b *testing.B) {
	b.Run("update-commit", func(b *testing.B) {
		srv := newBenchServer(b, 1<<20, 4096)
		fcap := flatFile(b, srv, 4, make([]byte, 128))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, _ := srv.CreateVersion(fcap, server.CreateVersionOpts{})
			if err := srv.WritePage(v, page.Path{0}, []byte("x")); err != nil {
				b.Fatal(err)
			}
			if err := srv.Commit(v); err != nil {
				b.Fatal(err)
			}
		}
		if srv.OCCStats().Validations.Load() != 0 {
			b.Fatal("sequential commits validated")
		}
	})
	b.Run("one-page-temp-file", func(b *testing.B) {
		srv := newBenchServer(b, 1<<20, 4096)
		payload := make([]byte, 1024)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := srv.CreateFile(payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE4ConcurrentCommit measures commit under concurrency on a
// shared file (Fig. 6): parallel writers on disjoint pages merge; the
// abort rate is reported as a metric.
func BenchmarkE4ConcurrentCommit(b *testing.B) {
	srv := newBenchServer(b, 1<<20, 4096)
	const pages = 64
	fcap := flatFile(b, srv, pages, make([]byte, 128))
	var retries int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			for {
				v, err := srv.CreateVersion(fcap, server.CreateVersionOpts{})
				if err != nil {
					b.Fatal(err)
				}
				if err := srv.WritePage(v, page.Path{i % pages}, []byte("w")); err != nil {
					b.Fatal(err)
				}
				err = srv.Commit(v)
				if err == nil {
					break
				}
				if !errors.Is(err, occ.ErrConflict) {
					b.Fatal(err)
				}
				retries++
			}
		}
	})
	b.ReportMetric(float64(srv.OCCStats().Validations.Load())/float64(b.N), "validations/op")
}

// BenchmarkE4Baselines runs one read-2-write-1 transaction per iteration
// through each system, with retry on concurrency-control rejection — the
// single-row version of afs-bench -exp e4's sweep.
func BenchmarkE4Baselines(b *testing.B) {
	mk := map[string]func() (workload.System, error){
		"occ": func() (workload.System, error) {
			sys, _, err := workload.NewOCCService(1<<20, 4096)
			return sys, err
		},
		"locking": func() (workload.System, error) {
			return workload.NewLockStore(1<<20, 4096)
		},
		"timestamp": func() (workload.System, error) {
			return workload.NewTSStore(1<<20, 4096)
		},
	}
	for _, name := range []string{"occ", "locking", "timestamp"} {
		b.Run(name, func(b *testing.B) {
			sys, err := mk[name]()
			if err != nil {
				b.Fatal(err)
			}
			f, err := sys.CreateFile(64)
			if err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, 128)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for {
					txn, err := sys.Begin(f)
					if err != nil {
						b.Fatal(err)
					}
					_, e1 := txn.Read((i + 1) % 64)
					_, e2 := txn.Read((i + 7) % 64)
					e3 := txn.Write(i%64, payload)
					var err2 error
					if e1 == nil && e2 == nil && e3 == nil {
						err2 = txn.Commit()
					} else {
						txn.Abort()
						err2 = errors.Join(e1, e2, e3)
					}
					if err2 == nil {
						break
					}
					if !sys.Retryable(err2) {
						b.Fatal(err2)
					}
				}
			}
		})
	}
}

// BenchmarkE5SerialiseCost measures the §5.2 claim that the
// serialisability test's cost is "proportional to the size of the
// intersection" of the accessed sets — "quite fast when at least one of
// the concurrent updates is small" — and does not grow with file size:
// unaccessed subtrees are never descended. Files are two-level trees
// (fanout × fanout leaves); updates write leaves under different
// interior pages.
func BenchmarkE5SerialiseCost(b *testing.B) {
	for _, tc := range []struct {
		name         string
		fanout       int
		bSize, cSize int
	}{
		{"small-vs-small/leaves=256", 16, 1, 1},
		{"small-vs-large/leaves=256", 16, 1, 64},
		{"large-vs-large/leaves=256", 16, 64, 64},
		{"small-vs-small/leaves=1024", 32, 1, 1},
	} {
		b.Run(tc.name, func(b *testing.B) {
			d := disk.MustNew(disk.Geometry{Blocks: 1 << 20, BlockSize: 4096})
			st := version.NewStore(block.NewServer(d), 1)
			com := occ.NewCommitter(st)
			fact := capability.NewFactory(capability.NewPort().Public())
			base, err := version.CreateFile(st, fact.Register(1), fact.Register(2), nil)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < tc.fanout; i++ {
				if err := base.InsertPage(page.RootPath, i, nil); err != nil {
					b.Fatal(err)
				}
				for j := 0; j < tc.fanout; j++ {
					if err := base.InsertPage(page.Path{i}, j, []byte("leaf")); err != nil {
						b.Fatal(err)
					}
				}
			}
			// leafPath addresses leaf k in row-major order.
			leafPath := func(k int) page.Path {
				return page.Path{k / tc.fanout, k % tc.fanout}
			}
			total := tc.fanout * tc.fanout
			// c writes cSize leaves at the high end and commits.
			vc, _ := version.CreateVersion(st, base.Root, fact.Register(3))
			for i := 0; i < tc.cSize; i++ {
				vc.WritePage(leafPath(total-1-i), []byte("c"))
			}
			if err := com.Commit(vc); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				// b writes bSize leaves at the low end (disjoint).
				vb, _ := version.CreateVersion(st, base.Root, fact.Register(uint32(10+i)))
				for j := 0; j < tc.bSize; j++ {
					vb.WritePage(leafPath(j), []byte("b"))
				}
				b.StartTimer()
				ok, err := com.Serialise(vb, vc.Root)
				if err != nil || !ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
			}
			b.ReportMetric(float64(com.Stat.PagesCompared.Load())/float64(b.N), "pages-compared/op")
		})
	}
}

// BenchmarkE6SuperFile measures the §5.3 locking discipline: a
// super-file update (top lock + inner lock + sub-file commit) against a
// plain small-file update.
func BenchmarkE6SuperFile(b *testing.B) {
	b.Run("small-file-update", func(b *testing.B) {
		srv := newBenchServer(b, 1<<20, 4096)
		fcap := flatFile(b, srv, 4, make([]byte, 128))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, _ := srv.CreateVersion(fcap, server.CreateVersionOpts{})
			srv.WritePage(v, page.Path{0}, []byte("s"))
			if err := srv.Commit(v); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("super-file-update", func(b *testing.B) {
		srv := newBenchServer(b, 1<<20, 4096)
		superCap, err := srv.CreateFile([]byte("super"))
		if err != nil {
			b.Fatal(err)
		}
		v, _ := srv.CreateVersion(superCap, server.CreateVersionOpts{})
		if _, err := srv.CreateSubFile(v, page.RootPath, 0, []byte("sub")); err != nil {
			b.Fatal(err)
		}
		if err := srv.Commit(v); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, err := srv.CreateVersion(superCap, server.CreateVersionOpts{})
			if err != nil {
				b.Fatal(err)
			}
			if err := srv.WritePage(v, page.Path{0}, []byte("x")); err != nil {
				b.Fatal(err)
			}
			if err := srv.Commit(v); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE7CacheValidation measures the §5.4 cache: an update+read
// cycle against an unshared file with and without the client cache. The
// cached variant moves no page data and its validation is a null
// operation.
func BenchmarkE7CacheValidation(b *testing.B) {
	run := func(b *testing.B, useCache bool) {
		cl, fcap := newBenchClient(b)
		// Warm.
		v, err := cl.Update(fcap, clientOpts())
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := v.Read(page.RootPath); err != nil {
			b.Fatal(err)
		}
		v.Abort()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !useCache {
				cl.Cache.Drop(fcap.Object)
			}
			v, err := cl.Update(fcap, clientOpts())
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := v.Read(page.RootPath); err != nil {
				b.Fatal(err)
			}
			v.Abort()
		}
		st := cl.Stats()
		b.ReportMetric(float64(st.BytesFetched)/float64(b.N), "bytes-fetched/op")
	}
	b.Run("cold", func(b *testing.B) { run(b, false) })
	b.Run("cached", func(b *testing.B) { run(b, true) })
}

// BenchmarkE8StableStorage measures the §4 paired block servers: the
// write path costs one extra companion write; reads stay local.
func BenchmarkE8StableStorage(b *testing.B) {
	geo := disk.Geometry{Blocks: 1 << 16, BlockSize: 4096}
	payload := make([]byte, 4096)
	b.Run("single/write", func(b *testing.B) {
		s := block.NewServer(disk.MustNew(geo))
		n, _ := s.Alloc(1, payload)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.Write(1, n, payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pair/write", func(b *testing.B) {
		p := stable.NewFailoverPair(block.NewServer(disk.MustNew(geo)), block.NewServer(disk.MustNew(geo)))
		n, _ := p.Alloc(1, payload)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := p.Write(1, n, payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pair/read", func(b *testing.B) {
		p := stable.NewFailoverPair(block.NewServer(disk.MustNew(geo)), block.NewServer(disk.MustNew(geo)))
		n, _ := p.Alloc(1, payload)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Read(1, n); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE13Mirror measures the generalised mirroring layer over the
// durable backend plus its failure paths: the mirrored-write penalty on
// segstore pairs, the corrupt-read fallback-and-repair, and the
// intentions-replay rejoin. (afs-bench -exp e13 runs the full sweep.)
func BenchmarkE13Mirror(b *testing.B) {
	geo := disk.Geometry{Blocks: 1 << 12, BlockSize: 4096}
	payload := make([]byte, 4096)
	newSeg := func(b *testing.B) *segstore.Store {
		st, err := segstore.Open(b.TempDir(), segstore.Options{BlockSize: 4096, Capacity: 1 << 12})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { st.Close() })
		return st
	}
	b.Run("seg-pair/write", func(b *testing.B) {
		p := stable.NewFailoverPair(newSeg(b), newSeg(b))
		n, err := p.Alloc(1, payload)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := p.Write(1, n, payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mem-pair/corrupt-fallback-read", func(b *testing.B) {
		da := disk.MustNew(geo)
		p := stable.NewFailoverPair(block.NewServer(da), block.NewServer(disk.MustNew(geo)))
		n, err := p.Alloc(1, payload)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := da.InjectCorruption(int(n)); err != nil {
				b.Fatal(err)
			}
			if _, err := p.Read(1, n); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mem-pair/rejoin-replay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			p := stable.NewFailoverPair(block.NewServer(disk.MustNew(geo)), block.NewServer(disk.MustNew(geo)))
			a, half := p.Halves()
			n, err := p.Alloc(1, payload)
			if err != nil {
				b.Fatal(err)
			}
			half.Crash()
			for w := 0; w < 32; w++ {
				if err := a.Write(1, n, payload); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
			if err := half.Rejoin(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE9CrashRecovery measures what it takes to resume service
// after a server crash: the optimistic design needs nothing but failover
// (no rollback, no lock clearing, no intentions lists); the locking
// baseline must redo its journal.
func BenchmarkE9CrashRecovery(b *testing.B) {
	b.Run("occ/failover", func(b *testing.B) {
		// Time from crash to the first successful operation on a
		// sibling server: pure failover, zero repair.
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cl, fcap, crash := newCrashableCluster(b)
			v, err := cl.Update(fcap, clientOpts())
			if err != nil {
				b.Fatal(err)
			}
			v.Write(page.RootPath, []byte("in-flight"))
			b.StartTimer()
			crash()
			redo, err := cl.Update(fcap, clientOpts())
			if err != nil {
				b.Fatal(err)
			}
			if err := redo.Write(page.RootPath, []byte("redone")); err != nil {
				b.Fatal(err)
			}
			if err := redo.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("locking/recover", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			st := newCrashedLockStore(b, 64)
			b.StartTimer()
			rep := st.Recover()
			if rep.IntentionsRedone == 0 {
				b.Fatal("nothing recovered")
			}
		}
	})
}
