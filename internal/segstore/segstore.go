// Package segstore is the durable block-store backend: a persistent,
// log-structured implementation of block.Store on the real OS
// filesystem, in the style of Plan 9's venti and other append-only
// checksummed block logs.
//
// Layout: a store directory holds numbered segment files
// (seg-00000001.log, ...) of fixed-size records, each framed with the
// block number, owning account, an append sequence number, the payload
// and a CRC32 (see segment.go). Every mutation — allocate-and-write,
// write, claim, free — appends one record; nothing is ever updated in
// place, so a block write is exactly the paper's §4 "atomic action,
// with an acknowledgement that is returned after the block has been
// stored on disk": the acknowledgement is returned after fsync.
//
// Open rebuilds the whole in-memory index (block → segment/offset,
// owner) by scanning the segments in append order; there is no separate
// metadata file to lose or to keep consistent, and the §4 "list blocks
// owned by an account" recovery scan falls out of the same pass. A
// record at the tail of the last segment that fails its CRC is a torn
// write from a crash and is truncated away — the write was never
// acknowledged, so discarding it mirrors the simulated disk's
// lost-unacked-write semantics (disk.Crash).
//
// Durability is group-committed: concurrent writers' records are
// batched by a single writer goroutine and made durable with one fsync
// per batch, so the per-write fsync cost is amortised across however
// many writers are in flight (the AsyncFS observation: make the sync
// path batch-friendly and the hot path stays fast). SyncEach gives
// strict one-fsync-per-record semantics instead, and SyncNone none at
// all, for benchmarks.
//
// Garbage from superseded records is reclaimed by a compactor that
// copies a segment's few live records to the log tail and deletes the
// segment file, running — like the paper's §5.4 garbage collector —
// "independent of, and in parallel with" normal operation.
package segstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/block"
)

// Store errors, in addition to the block package's sentinel errors
// (block.ErrNotAllocated etc.), which this backend returns for the same
// conditions so errors.Is works identically against either backend.
var (
	// ErrClosed reports an operation on a closed store.
	ErrClosed = errors.New("segstore: closed")
	// ErrCorrupt reports a record that failed its CRC outside the
	// truncatable log tail: real media corruption. It is branded with
	// the shared block.ErrCorrupt sentinel, so layers above (the
	// stable-storage companion fallback in particular) classify
	// corruption identically over the simulated disk and the segment
	// log, locally or across the wire.
	ErrCorrupt = block.MarkCorrupt(errors.New("segstore: corrupt"))
	// ErrGeometry reports Open options that contradict the geometry the
	// store directory was created with.
	ErrGeometry = errors.New("segstore: geometry mismatch")
)

// SyncMode selects how write acknowledgements relate to fsync.
type SyncMode int

const (
	// SyncGroup (the default) batches concurrent writes into one fsync:
	// every acknowledged write is durable, and the fsync cost is shared
	// by the whole batch.
	SyncGroup SyncMode = iota
	// SyncEach fsyncs after every single record: the strictest reading
	// of §4, at one fsync per write.
	SyncEach
	// SyncNone never fsyncs (the OS flushes when it pleases); a crash
	// may lose acknowledged writes. For benchmarks and tests only.
	SyncNone
)

// String implements flag.Value-style printing.
func (m SyncMode) String() string {
	switch m {
	case SyncGroup:
		return "group"
	case SyncEach:
		return "each"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncMode(%d)", int(m))
}

// ParseSyncMode parses "group", "each" or "none".
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "group":
		return SyncGroup, nil
	case "each":
		return SyncEach, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("segstore: unknown sync mode %q (want group, each or none)", s)
}

// Options configures Open. The zero value is usable.
type Options struct {
	// BlockSize is the payload size in bytes (default 4096). Pinned in
	// the store's meta file at creation; reopening with a different
	// value fails with ErrGeometry.
	BlockSize int
	// SegmentRecords is how many records fill a segment before the log
	// rolls to a new file (default 1024). Also pinned at creation.
	SegmentRecords int
	// Capacity is the number of allocatable block numbers (default
	// 1<<20). A runtime policy, not persisted: it may grow between
	// opens.
	Capacity int
	// Sync is the durability mode (default SyncGroup).
	Sync SyncMode
	// CompactEvery runs the background compactor at this interval; zero
	// disables it (CompactOnce still works on demand).
	CompactEvery time.Duration
	// CompactMinGarbage is the fraction of a sealed segment's records
	// that must be dead before it is an eligible compaction victim
	// (default 0.5).
	CompactMinGarbage float64
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.BlockSize <= 0 {
		o.BlockSize = 4096
	}
	if o.SegmentRecords <= 0 {
		o.SegmentRecords = 1024
	}
	if o.Capacity <= 0 {
		o.Capacity = 1 << 20
	}
	if o.CompactMinGarbage <= 0 {
		o.CompactMinGarbage = 0.5
	}
	return o
}

// Stats counts operations on a Store.
type Stats struct {
	// The block.Store operation counters, matching block.Stats.
	Allocs, Frees, Reads, Writes, Locks, Unlocks uint64
	LockConflicts                                uint64

	// Group-commit counters: Batches fsync-batches written, holding
	// BatchRecords records in total, with Syncs actual fsyncs issued.
	Batches, BatchRecords, Syncs uint64

	// Compaction counters.
	Compactions, Relocations, SegmentsReclaimed uint64

	// TruncatedBytes is how much torn tail the last Open cut off.
	TruncatedBytes uint64
}

// writeReq is one mutation queued to the writer goroutine.
type writeReq struct {
	kind    byte // recData or recFree
	alloc   bool // writer picks the block number
	onlyIf  *loc // relocation: append only if the index still points here
	num     block.Num
	account block.Account
	data    []byte

	err     error
	skipped bool // relocation guard failed; not an error
	done    chan struct{}
}

// pendState tracks records that are admitted to the log but not yet
// applied to the index (they sit in the appender→syncer pipeline).
// Admission decisions consult it so that in-flight, unapplied mutations
// behave as if already serialised: a write after an in-flight free
// fails, and a compactor relocation never runs ahead of an in-flight
// write to the same block.
type pendState struct {
	count int  // in-flight records for this block
	free  bool // one of them is a free
}

// placement pairs an admitted request with the log position its record
// was appended at.
type placement struct {
	req *writeReq
	at  loc
}

// sealedBatch travels from the appender to the syncer: records already
// written (but not yet fsynced) to the segments in syncSegs. A barrier
// batch carries no records; the syncer just signals that everything
// before it has been processed.
type sealedBatch struct {
	placed   []placement
	syncSegs []*segment
	barrier  chan struct{}
}

// Store is a durable block store rooted in one directory. It implements
// block.Store; all methods are safe for concurrent use.
type Store struct {
	dir     string
	opt     Options
	recSize int

	// mu guards the index, the pending table, the segment table, stats,
	// and failure state.
	mu       sync.Mutex
	idx      *index
	pend     map[block.Num]pendState
	segs     map[uint64]*segment
	active   *segment
	dirf     *os.File // for fsyncing directory entries
	stats    Stats
	epoch    uint64 // persisted block.EpochStore value (file "epoch")
	epochBad bool   // epoch file present but unparsable: detection off
	failed   error  // sticky first append-path I/O error
	closed   bool

	// seq is the next record sequence number; touched only by Open and
	// the appender goroutine.
	seq uint64
	// lastBatch remembers the previous batch size (appender-only): a
	// recent multi-writer batch is the signal to hold the next commit
	// open briefly for stragglers.
	lastBatch int
	// pendingBuf is the reused batch encode buffer (appender-only).
	pendingBuf []byte

	// sendMu guards sends against channel close. Mutations flow
	// reqs → appender → sealed → syncer; the syncer's exit closes
	// syncerDone. The channel carries request groups: a multi-block
	// operation's records travel as one group and therefore land in one
	// group-commit batch (one fsync), instead of making N independent
	// trips through the pipeline.
	sendMu     sync.RWMutex
	reqs       chan []*writeReq
	sealed     chan sealedBatch
	syncerDone chan struct{}

	stopCompact chan struct{}
	compactWG   sync.WaitGroup
	closeOnce   sync.Once
}

// maxBatch bounds how many queued requests one fsync batch absorbs.
const maxBatch = 128

// groupWindow is how long a group commit stays open for stragglers
// once concurrency has been observed. An fsync costs ~100-500µs, so a
// sub-fsync wait that doubles the batch size is a clear win; a lone
// sequential writer never pays it (no concurrency signal).
const groupWindow = 200 * time.Microsecond

// Open opens (creating if necessary) the store in dir and rebuilds the
// index from the segment files.
func Open(dir string, opt Options) (*Store, error) {
	opt = opt.withDefaults()
	if opt.Capacity > int(block.MaxNum) {
		return nil, fmt.Errorf("segstore: capacity %d exceeds max block number %d", opt.Capacity, block.MaxNum)
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	dirf, err := os.Open(dir)
	if err != nil {
		return nil, err
	}
	// One process per store: two appenders computing tail offsets
	// independently would shred the log. The flock dies with the
	// process, so a crashed owner never wedges the store.
	if err := lockDir(dirf); err != nil {
		dirf.Close()
		return nil, fmt.Errorf("segstore: %s: %w", dir, err)
	}
	if err := loadMeta(dir, &opt); err != nil {
		dirf.Close()
		return nil, err
	}
	epoch, epochBad, err := loadEpoch(dir)
	if err != nil {
		dirf.Close()
		return nil, err
	}
	s := &Store{
		dir:        dir,
		opt:        opt,
		recSize:    recordSize(opt.BlockSize),
		idx:        newIndex(),
		pend:       make(map[block.Num]pendState),
		segs:       make(map[uint64]*segment),
		dirf:       dirf,
		seq:        1,
		reqs:       make(chan []*writeReq, 16),
		sealed:     make(chan sealedBatch, 4),
		syncerDone: make(chan struct{}),
	}
	s.epoch, s.epochBad = epoch, epochBad
	if err := s.load(); err != nil {
		s.closeFiles(false)
		return nil, err
	}
	go s.runAppender()
	go s.runSyncer()
	if opt.CompactEvery > 0 {
		s.stopCompact = make(chan struct{})
		s.compactWG.Add(1)
		go s.compactLoop()
	}
	return s, nil
}

// epochName is the persisted epoch file (block.EpochStore): bumped by
// the stable layer when this store's companion goes down, compared by a
// fresh pair to spot boot-time divergence. One fsynced line.
const epochName = "epoch"

// loadEpoch reads the epoch file; a missing file is epoch zero. An
// unparsable file must not brick an otherwise intact store, but it
// must not report zero either — a survivor whose epoch file rotted
// would then look OLDER than the stale half and be elected the
// full-copy target, destroying the very writes the epoch protects. It
// reports bad=true instead: Epoch() then errors, the pair skips
// automatic divergence detection, and the operator's -stale override
// is the fallback.
func loadEpoch(dir string) (uint64, bool, error) {
	raw, err := os.ReadFile(filepath.Join(dir, epochName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	var e uint64
	if _, err := fmt.Sscanf(string(raw), "epoch %d", &e); err != nil {
		return 0, true, nil
	}
	return e, false, nil
}

// Epoch implements block.EpochStore.
func (s *Store) Epoch() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	if s.epochBad {
		return 0, fmt.Errorf("segstore: %s file unparsable; divergence detection disabled (operator -stale override applies) until the next epoch write", epochName)
	}
	return s.epoch, nil
}

// SetEpoch implements block.EpochStore: the value is on disk before the
// acknowledgement, like every other acknowledged mutation. The file is
// replaced atomically (write-new, fsync, rename, fsync the directory),
// so a crash at any point leaves either the old epoch or the new one —
// never a torn file that would mask a divergence.
func (s *Store) SetEpoch(e uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	tmp := filepath.Join(s.dir, epochName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(f, "epoch %d\n", e); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, epochName)); err != nil {
		return err
	}
	if err := s.dirf.Sync(); err != nil {
		return err
	}
	s.epoch, s.epochBad = e, false
	return nil
}

// metaName is the geometry pin file: one line of sizes written at store
// creation. It is not needed for recovery — the index is rebuilt purely
// from the segments — it only guards against reopening with the wrong
// record geometry, which would misparse every offset.
const metaName = "meta"

// loadMeta validates opt against an existing store's meta file, or
// writes one for a fresh store.
func loadMeta(dir string, opt *Options) error {
	raw, err := os.ReadFile(filepath.Join(dir, metaName))
	if errors.Is(err, os.ErrNotExist) {
		ids, err := listSegments(dir)
		if err != nil {
			return err
		}
		if len(ids) > 0 {
			return fmt.Errorf("segstore: %s has segments but no %s file: %w", dir, metaName, ErrCorrupt)
		}
		line := fmt.Sprintf("segstore 1 blocksize %d segrecords %d\n", opt.BlockSize, opt.SegmentRecords)
		// Fsync the meta content: losing it to a power cut would leave
		// the store's intact, acknowledged segments unopenable.
		f, err := os.OpenFile(filepath.Join(dir, metaName), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o666)
		if err != nil {
			return err
		}
		if _, err := f.WriteString(line); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err != nil {
		return err
	}
	var version, bsize, srecs int
	if _, err := fmt.Sscanf(string(raw), "segstore %d blocksize %d segrecords %d", &version, &bsize, &srecs); err != nil {
		return fmt.Errorf("segstore: bad %s file: %w", metaName, err)
	}
	if version != 1 {
		return fmt.Errorf("segstore: %s version %d not supported", metaName, version)
	}
	if bsize != opt.BlockSize || srecs != opt.SegmentRecords {
		return fmt.Errorf("store has blocksize %d segrecords %d, opened with %d and %d: %w",
			bsize, srecs, opt.BlockSize, opt.SegmentRecords, ErrGeometry)
	}
	return nil
}

// load scans every segment in append order, rebuilding the index, and
// truncates a torn tail. Only the last segment may legitimately be
// partial or torn: the writer never appends to segment n+1 before
// segment n is full and (outside SyncNone) synced.
func (s *Store) load() error {
	ids, err := listSegments(s.dir)
	if err != nil {
		return err
	}
	if len(ids) == 0 {
		return s.createSegment(1)
	}
	for i, id := range ids {
		f, err := os.OpenFile(segPath(s.dir, id), os.O_RDWR, 0o666)
		if err != nil {
			return err
		}
		seg := &segment{id: id, f: f}
		s.segs[id] = seg
		if err := s.scanSegment(seg, i == len(ids)-1); err != nil {
			return err
		}
	}
	s.active = s.segs[ids[len(ids)-1]]
	return nil
}

// scanSegment replays one segment into the index. isTail marks the last
// (highest-numbered) segment, where a decode failure is a torn write to
// truncate rather than corruption.
func (s *Store) scanSegment(seg *segment, isTail bool) error {
	info, err := seg.f.Stat()
	if err != nil {
		return err
	}
	size := info.Size()
	buf := make([]byte, s.recSize)
	var off int64
	for off = 0; off+int64(s.recSize) <= size; off += int64(s.recSize) {
		if _, err := seg.f.ReadAt(buf, off); err != nil {
			return fmt.Errorf("segment %d offset %d: %w", seg.id, off, err)
		}
		rec, err := decodeRecord(buf, s.opt.BlockSize)
		if err != nil {
			if isTail {
				break
			}
			return fmt.Errorf("segment %d offset %d: %v: %w", seg.id, off, err, ErrCorrupt)
		}
		switch rec.kind {
		case recData:
			s.idx.place(block.Num(rec.num), block.Account(rec.account), loc{seg: seg.id, off: off})
		case recFree:
			s.idx.drop(block.Num(rec.num))
		}
		if rec.seq >= s.seq {
			s.seq = rec.seq + 1
		}
		seg.records++
	}
	if torn := size - off; torn > 0 {
		if !isTail {
			return fmt.Errorf("segment %d: %d trailing bytes mid-log: %w", seg.id, torn, ErrCorrupt)
		}
		// Everything from the first bad record to EOF is dropped, even
		// if later slots would decode: the appender writes batch n+1
		// while batch n is still being fsynced, and a crash can
		// persist the later batch's pages but not the earlier one's —
		// so a valid record after a torn one is expected, and nothing
		// past the tear was ever acknowledged. (The residual risk is
		// media rot inside the newest segment masquerading as a tear
		// and silently shortening it; rot in any sealed segment is
		// caught above.)
		if err := seg.f.Truncate(off); err != nil {
			return err
		}
		s.stats.TruncatedBytes += uint64(torn)
	}
	return nil
}

// createSegment makes segment id the active segment.
func (s *Store) createSegment(id uint64) error {
	f, err := os.OpenFile(segPath(s.dir, id), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o666)
	if err != nil {
		return err
	}
	if s.opt.Sync != SyncNone {
		if err := s.dirf.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	seg := &segment{id: id, f: f}
	s.mu.Lock()
	s.segs[id] = seg
	s.active = seg
	s.mu.Unlock()
	return nil
}

// --- the write pipeline ---
//
// Mutations flow through two goroutines so the fsync of one batch
// overlaps the collection and encoding of the next:
//
//	clients → reqs → appender (admit, encode, write) → sealed →
//	syncer (fsync, apply to index, acknowledge)
//
// The appender is the sole admission point and the sole log writer, so
// checks and appends are atomic in log order; the syncer applies
// batches to the index in that same order, so the in-memory state
// always equals what a replay of the durable log would rebuild, and a
// request is acknowledged only after its record is fsynced.

// runAppender collects request groups into group-commit batches and
// appends their records to the log.
func (s *Store) runAppender() {
	defer close(s.sealed)
	var batch []*writeReq
	for {
		group, ok := <-s.reqs
		if !ok {
			return
		}
		batch = append(batch[:0], group...)
	fill:
		for len(batch) < maxBatch {
			select {
			case group, ok := <-s.reqs:
				if !ok {
					break fill
				}
				batch = append(batch, group...)
			default:
				break fill
			}
		}
		// Group-commit window: if the last batch was bigger than what
		// the drain caught, some of those writers are still waking
		// from their acknowledgement — hold the commit open while
		// their requests are still arriving, so they make this fsync
		// instead of forcing their own. The wait is arrival-driven: a
		// yield lets waking writers run and enqueue; once a few
		// consecutive yields bring nothing new, everyone still out
		// there is genuinely idle and the batch commits immediately.
		// (A timer would put a fixed floor under every commit, and
		// runtime timers are about a millisecond coarse — several
		// times the fsync this window is trying to amortise.)
		if s.opt.Sync == SyncGroup && len(batch) < s.lastBatch && len(batch) < maxBatch {
			deadline := time.Now().Add(groupWindow)
			idle, spins := 0, 0
		window:
			for len(batch) < maxBatch && idle < 32 {
				select {
				case group, ok := <-s.reqs:
					if !ok {
						break window
					}
					batch = append(batch, group...)
					idle = 0
				default:
					idle++
					// The deadline caps the wait when the scheduler
					// is busy with long-running goroutines; probe the
					// clock sparsely so the spin does not burn the
					// CPU the waking writers need.
					spins++
					if spins%16 == 0 && !time.Now().Before(deadline) {
						break window
					}
					runtime.Gosched()
				}
			}
		}
		s.lastBatch = len(batch)
		s.appendBatch(batch)
	}
}

// finish completes one request.
func finish(r *writeReq, err error) {
	r.err = err
	close(r.done)
}

// pendDone retires one in-flight record. Caller holds s.mu.
func (s *Store) pendDone(r *writeReq) {
	p := s.pend[r.num]
	p.count--
	if r.kind == recFree {
		p.free = false
	}
	if p.count <= 0 {
		delete(s.pend, r.num)
	} else {
		s.pend[r.num] = p
	}
}

// admit decides one request under s.mu, as if all in-flight records had
// already been applied (the pending table stands in for them). It
// reports whether the request proceeds to the log; rejected requests
// are finished here.
func (s *Store) admit(r *writeReq) bool {
	switch {
	case r.alloc:
		n, err := s.idx.allocNum(r.account, s.opt.Capacity)
		if err != nil {
			finish(r, err)
			return false
		}
		r.num = n
	case r.onlyIf != nil:
		// Relocation: only while the index still points at the guarded
		// record AND nothing newer is in flight for the block.
		e, ok := s.idx.entries[r.num]
		if s.pend[r.num].count > 0 || !ok || e.loc != *r.onlyIf {
			r.skipped = true
			finish(r, nil)
			return false
		}
		r.account = e.owner
	default:
		if s.pend[r.num].free {
			finish(r, fmt.Errorf("block %d: %w", r.num, block.ErrNotAllocated))
			return false
		}
		if err := s.idx.checkOwner(r.account, r.num); err != nil {
			finish(r, err)
			return false
		}
	}
	if len(r.data) > s.opt.BlockSize {
		// Multi-op requests reach admission without the entry-point size
		// check, so each oversized payload fails individually here.
		if r.alloc {
			s.idx.drop(r.num)
		}
		finish(r, fmt.Errorf("segstore: %d bytes into %d-byte block", len(r.data), s.opt.BlockSize))
		return false
	}
	p := s.pend[r.num]
	p.count++
	if r.kind == recFree {
		p.free = true
	}
	s.pend[r.num] = p
	return true
}

// appendBatch admits one batch and appends its records, sealing them to
// the syncer. In SyncEach mode every record seals (and so fsyncs)
// individually; otherwise the whole batch seals at once.
func (s *Store) appendBatch(batch []*writeReq) {
	s.mu.Lock()
	if err := s.failed; err != nil {
		s.mu.Unlock()
		for _, r := range batch {
			finish(r, err)
		}
		return
	}
	admitted := batch[:0]
	for _, r := range batch {
		if s.admit(r) {
			admitted = append(admitted, r)
		}
	}
	s.mu.Unlock()
	if len(admitted) == 0 {
		return
	}

	// A batch can exceed maxBatch when whole request groups straddle the
	// drain limit; size the encode buffer for the real batch.
	if need := len(admitted) * s.recSize; cap(s.pendingBuf) < need {
		s.pendingBuf = make([]byte, 0, need)
	}
	pending := s.pendingBuf[:0]
	var placed []placement
	sealUpTo := 0 // records handed to the syncer so far
	// fail rolls back and finishes everything not yet sealed; sealed
	// records are the syncer's to finish.
	fail := func(err error) {
		s.mu.Lock()
		if s.failed == nil {
			s.failed = err
		}
		for _, p := range placed[sealUpTo:] {
			s.pendDone(p.req)
			if p.req.alloc {
				s.idx.drop(p.req.num)
			}
		}
		rest := admitted[len(placed):]
		for _, r := range rest {
			s.pendDone(r)
			if r.alloc {
				s.idx.drop(r.num)
			}
		}
		s.mu.Unlock()
		for _, p := range placed[sealUpTo:] {
			finish(p.req, err)
		}
		for _, r := range rest {
			finish(r, err)
		}
	}
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		if _, err := s.active.f.WriteAt(pending, s.active.tail(s.recSize)); err != nil {
			return err
		}
		s.active.records += len(pending) / s.recSize
		pending = pending[:0]
		return nil
	}
	seal := func() {
		if len(placed) == sealUpTo {
			return
		}
		s.sealed <- sealedBatch{
			placed:   placed[sealUpTo:len(placed):len(placed)],
			syncSegs: []*segment{s.active},
		}
		sealUpTo = len(placed)
	}
	for _, r := range admitted {
		if s.active.records+len(pending)/s.recSize >= s.opt.SegmentRecords {
			// Rotate. The invariant load() depends on — segment n+1
			// has no records unless segment n is full and durable —
			// requires draining the pipeline and syncing the old
			// segment before the new one takes its first record.
			if err := flush(); err != nil {
				fail(err)
				return
			}
			seal()
			barrier := make(chan struct{})
			s.sealed <- sealedBatch{barrier: barrier}
			<-barrier
			if s.opt.Sync != SyncNone {
				if err := s.active.f.Sync(); err != nil {
					fail(err)
					return
				}
				s.mu.Lock()
				s.stats.Syncs++
				s.mu.Unlock()
			}
			if err := s.createSegment(s.active.id + 1); err != nil {
				fail(err)
				return
			}
		}
		at := loc{seg: s.active.id, off: s.active.tail(s.recSize) + int64(len(pending))}
		rec := record{kind: r.kind, num: uint32(r.num), account: uint32(r.account), seq: s.seq, data: r.data}
		s.seq++
		start := len(pending)
		pending = pending[:start+s.recSize]
		encodeRecord(pending[start:], s.opt.BlockSize, rec)
		placed = append(placed, placement{req: r, at: at})
		if s.opt.Sync == SyncEach {
			if err := flush(); err != nil {
				fail(err)
				return
			}
			seal()
		}
	}
	if err := flush(); err != nil {
		fail(err)
		return
	}
	seal()
}

// runSyncer makes sealed batches durable, applies them to the index in
// log order, and acknowledges their requests.
func (s *Store) runSyncer() {
	defer close(s.syncerDone)
	for sb := range s.sealed {
		if sb.barrier != nil {
			close(sb.barrier)
			continue
		}
		s.mu.Lock()
		err := s.failed
		s.mu.Unlock()
		if err == nil && s.opt.Sync != SyncNone {
			for _, seg := range sb.syncSegs {
				if serr := seg.f.Sync(); serr != nil {
					err = serr
					break
				}
			}
		}
		if err != nil {
			s.mu.Lock()
			if s.failed == nil {
				s.failed = err
			}
			for _, p := range sb.placed {
				s.pendDone(p.req)
				if p.req.alloc {
					s.idx.drop(p.req.num)
				}
			}
			s.mu.Unlock()
			for _, p := range sb.placed {
				finish(p.req, err)
			}
			continue
		}
		s.mu.Lock()
		for _, p := range sb.placed {
			switch {
			case p.req.kind == recFree:
				s.idx.drop(p.req.num)
				s.stats.Frees++
			case p.req.alloc:
				s.idx.place(p.req.num, p.req.account, p.at)
				s.stats.Allocs++
			case p.req.onlyIf != nil:
				s.idx.place(p.req.num, p.req.account, p.at)
				s.stats.Relocations++
			default:
				s.idx.place(p.req.num, p.req.account, p.at)
				s.stats.Writes++
			}
			s.pendDone(p.req)
		}
		s.stats.Batches++
		s.stats.BatchRecords += uint64(len(sb.placed))
		if s.opt.Sync != SyncNone {
			s.stats.Syncs += uint64(len(sb.syncSegs))
		}
		s.mu.Unlock()
		for _, p := range sb.placed {
			finish(p.req, nil)
		}
	}
}

// send queues one request group to the writer; wait for each request's
// done before reading its err. A group always lands in a single
// appender batch (and so at most one fsync), which is what makes the
// multi-block operations one trip through the pipeline.
func (s *Store) send(group ...*writeReq) error {
	s.sendMu.RLock()
	defer s.sendMu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	s.reqs <- group
	return nil
}

// submit queues r and waits for its outcome.
func (s *Store) submit(r *writeReq) error {
	r.done = make(chan struct{})
	if err := s.send(r); err != nil {
		return err
	}
	<-r.done
	return r.err
}

// submitMany queues a multi-block operation's requests in maxBatch-sized
// groups and waits for all of them, returning the first (lowest-index)
// error and its index. Each request's own outcome stays readable in
// r.err/r.skipped.
func (s *Store) submitMany(reqs []*writeReq) (int, error) {
	for _, r := range reqs {
		r.done = make(chan struct{})
	}
	sent := 0
	var sendErr error
	for sent < len(reqs) {
		end := sent + maxBatch
		if end > len(reqs) {
			end = len(reqs)
		}
		if err := s.send(reqs[sent:end]...); err != nil {
			sendErr = err
			break
		}
		sent = end
	}
	firstIdx := -1
	var first error
	for i, r := range reqs[:sent] {
		<-r.done
		if r.err != nil && first == nil {
			firstIdx, first = i, r.err
		}
	}
	if first == nil && sendErr != nil {
		firstIdx, first = sent, sendErr
	}
	// Requests never enqueued (store closed mid-loop) fail uniformly.
	for _, r := range reqs[sent:] {
		r.err = ErrClosed
	}
	return firstIdx, first
}

// --- block.Store ---

// BlockSize implements block.Store.
func (s *Store) BlockSize() int { return s.opt.BlockSize }

// checkData validates a payload size.
func (s *Store) checkData(data []byte) error {
	if len(data) > s.opt.BlockSize {
		return fmt.Errorf("segstore: %d bytes into %d-byte block", len(data), s.opt.BlockSize)
	}
	return nil
}

// Alloc implements block.Store: it allocates a fresh block, appends its
// first record, and acknowledges once the record is durable.
func (s *Store) Alloc(account block.Account, data []byte) (block.Num, error) {
	if err := s.checkData(data); err != nil {
		return block.NilNum, err
	}
	r := &writeReq{kind: recData, alloc: true, account: account, data: data}
	if err := s.submit(r); err != nil {
		return block.NilNum, err
	}
	return r.num, nil
}

// Claim allocates a specific block number, failing if it is taken — the
// same companion-pair operation block.Server has. Durable: a claim
// appends an empty data record.
func (s *Store) Claim(account block.Account, n block.Num) error {
	if n == block.NilNum || int(n) > s.opt.Capacity {
		return fmt.Errorf("segstore: block %d out of range 1..%d", n, s.opt.Capacity)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if err := s.idx.reserve(account, n); err != nil {
		s.mu.Unlock()
		return err
	}
	s.mu.Unlock()
	if err := s.submit(&writeReq{kind: recData, num: n, account: account}); err != nil {
		s.mu.Lock()
		if e, ok := s.idx.entries[n]; ok && e.loc == (loc{}) {
			s.idx.drop(n)
		}
		s.mu.Unlock()
		return err
	}
	return nil
}

// Free implements block.Store: durable once the free record is synced.
func (s *Store) Free(account block.Account, n block.Num) error {
	return s.submit(&writeReq{kind: recFree, num: n, account: account})
}

// Read implements block.Store. The payload is CRC-checked on every
// read, so media corruption surfaces as ErrCorrupt rather than as
// silently wrong data.
func (s *Store) Read(account block.Account, n block.Num) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if err := s.idx.checkOwner(account, n); err != nil {
		return nil, err
	}
	s.stats.Reads++
	e := s.idx.entries[n]
	if e.loc == (loc{}) {
		// Reserved by a Claim (or an Alloc still in flight): no record
		// yet, so the block reads as zeroes like a never-written disk
		// block.
		return make([]byte, s.opt.BlockSize), nil
	}
	return s.readRecord(n, e.loc)
}

// readRecord loads and verifies the record at l; caller holds s.mu.
func (s *Store) readRecord(n block.Num, l loc) ([]byte, error) {
	seg, ok := s.segs[l.seg]
	if !ok {
		return nil, fmt.Errorf("block %d: segment %d missing: %w", n, l.seg, ErrCorrupt)
	}
	buf := make([]byte, s.recSize)
	if _, err := seg.f.ReadAt(buf, l.off); err != nil {
		return nil, fmt.Errorf("block %d: %w", n, err)
	}
	rec, err := decodeRecord(buf, s.opt.BlockSize)
	if err != nil {
		return nil, fmt.Errorf("block %d (segment %d offset %d): %v: %w", n, l.seg, l.off, err, ErrCorrupt)
	}
	if block.Num(rec.num) != n || rec.kind != recData {
		return nil, fmt.Errorf("block %d (segment %d offset %d): record names block %d: %w", n, l.seg, l.off, rec.num, ErrCorrupt)
	}
	return rec.data, nil
}

// Write implements block.Store: acknowledged only once the record is
// durable (per the store's SyncMode).
func (s *Store) Write(account block.Account, n block.Num, data []byte) error {
	if err := s.checkData(data); err != nil {
		return err
	}
	return s.submit(&writeReq{kind: recData, num: n, account: account, data: data})
}

// Lock implements block.Store. Lock bits are volatile (§5.2 commit
// critical-section state): a restart clears them, as block servers do
// after a crash.
func (s *Store) Lock(account block.Account, n block.Num) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.idx.checkOwner(account, n); err != nil {
		return err
	}
	e := s.idx.entries[n]
	if e.locked {
		s.stats.LockConflicts++
		return fmt.Errorf("block %d: %w", n, block.ErrLocked)
	}
	e.locked = true
	s.idx.entries[n] = e
	s.stats.Locks++
	return nil
}

// Unlock implements block.Store.
func (s *Store) Unlock(account block.Account, n block.Num) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.idx.checkOwner(account, n); err != nil {
		return err
	}
	e := s.idx.entries[n]
	if !e.locked {
		return fmt.Errorf("block %d: %w", n, block.ErrNotLocked)
	}
	e.locked = false
	s.idx.entries[n] = e
	s.stats.Unlocks++
	return nil
}

// Recover implements block.Store: the §4 recovery scan, straight off
// the rebuilt index.
func (s *Store) Recover(account block.Account) ([]block.Num, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.idx.recover(account), nil
}

var _ block.Store = (*Store)(nil)
var _ block.MultiStore = (*Store)(nil)
var _ block.EpochStore = (*Store)(nil)

// --- block.MultiStore ---
//
// The multi-block operations follow the contract documented on
// block.MultiStore. Their records travel as one request group through
// the appender, so an N-block batch rides one group-commit window —
// one fsync — instead of N independent trips through the pipeline.

// ReadMulti implements block.MultiStore: one index-lock acquisition for
// the whole batch (all-or-nothing; reads modify nothing).
func (s *Store) ReadMulti(account block.Account, ns []block.Num) ([][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	out := make([][]byte, len(ns))
	for i, n := range ns {
		if err := s.idx.checkOwner(account, n); err != nil {
			return nil, &block.MultiError{Op: "read", Index: i, N: len(ns), Err: err}
		}
		e := s.idx.entries[n]
		if e.loc == (loc{}) {
			out[i] = make([]byte, s.opt.BlockSize)
			continue
		}
		data, err := s.readRecord(n, e.loc)
		if err != nil {
			return nil, &block.MultiError{Op: "read", Index: i, N: len(ns), Err: err}
		}
		out[i] = data
	}
	s.stats.Reads += uint64(len(ns))
	return out, nil
}

// WriteMulti implements block.MultiStore: per-block independence, all
// records in one group (one fsync), first error returned.
func (s *Store) WriteMulti(account block.Account, ns []block.Num, data [][]byte) error {
	if len(ns) != len(data) {
		return fmt.Errorf("segstore: multi write with %d blocks, %d payloads", len(ns), len(data))
	}
	reqs := make([]*writeReq, len(ns))
	for i := range ns {
		reqs[i] = &writeReq{kind: recData, num: ns[i], account: account, data: data[i]}
	}
	if idx, err := s.submitMany(reqs); err != nil {
		return &block.MultiError{Op: "write", Index: idx, N: len(ns), Err: err}
	}
	return nil
}

// AllocMulti implements block.MultiStore: all-or-nothing — on any
// failure the blocks that were allocated are freed again before the
// error returns.
func (s *Store) AllocMulti(account block.Account, data [][]byte) ([]block.Num, error) {
	reqs := make([]*writeReq, len(data))
	for i := range data {
		reqs[i] = &writeReq{kind: recData, alloc: true, account: account, data: data[i]}
	}
	if idx, err := s.submitMany(reqs); err != nil {
		var got []block.Num
		for _, r := range reqs {
			if r.err == nil {
				got = append(got, r.num)
			}
		}
		if len(got) > 0 {
			_ = s.FreeMulti(account, got) // best-effort rollback
		}
		return nil, &block.MultiError{Op: "alloc", Index: idx, N: len(data), Err: err}
	}
	out := make([]block.Num, len(reqs))
	for i, r := range reqs {
		out[i] = r.num
	}
	return out, nil
}

// FreeMulti implements block.MultiStore: per-block independence, all
// free records in one group, first error returned.
func (s *Store) FreeMulti(account block.Account, ns []block.Num) error {
	reqs := make([]*writeReq, len(ns))
	for i, n := range ns {
		reqs[i] = &writeReq{kind: recFree, num: n, account: account}
	}
	if idx, err := s.submitMany(reqs); err != nil {
		return &block.MultiError{Op: "free", Index: idx, N: len(ns), Err: err}
	}
	return nil
}

// --- management ---

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Capacity returns the number of allocatable blocks.
func (s *Store) Capacity() int { return s.opt.Capacity }

// InUse returns the number of currently allocated blocks.
func (s *Store) InUse() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.idx.entries)
}

// Segments returns the number of live segment files.
func (s *Store) Segments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.segs)
}

// Stats returns a snapshot of the operation counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Usage implements block.UsageReporter, so a sharding facade (or a
// remote mount) can read this store's allocation headroom.
func (s *Store) Usage() (block.Usage, error) {
	return block.Usage{Capacity: s.Capacity(), InUse: s.InUse()}, nil
}

// BlockStats implements block.StatsReporter: the common counter subset,
// including the fsync count, in the shape the wire protocol carries.
func (s *Store) BlockStats() (block.Stats, error) {
	st := s.Stats()
	return block.Stats{
		Allocs: st.Allocs, Frees: st.Frees, Reads: st.Reads, Writes: st.Writes,
		Locks: st.Locks, Unlocks: st.Unlocks, LockConflicts: st.LockConflicts,
		Syncs: st.Syncs,
	}, nil
}

// Owners returns a copy of the allocation table, for companion-style
// recovery (parity with block.Server).
func (s *Store) Owners() map[block.Num]block.Account {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.idx.owners()
}

// ClearLocks drops every lock bit (parity with block.Server; Open
// already starts with all locks clear).
func (s *Store) ClearLocks() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.idx.clearLocks()
}

// Close stops the compactor and the writer, syncs and closes every
// segment file. Acknowledged writes are already durable (outside
// SyncNone), so Close after a crash is unnecessary — that is the point
// of the store.
func (s *Store) Close() error {
	var err error
	s.closeOnce.Do(func() {
		if s.stopCompact != nil {
			close(s.stopCompact)
			s.compactWG.Wait()
		}
		s.markClosed()
		<-s.syncerDone
		err = s.closeFiles(true)
	})
	return err
}

// Abandon simulates a process crash, for tests and demos that reopen
// the directory in the same process: every file handle is closed
// immediately — releasing the directory lock — with no flush, no
// drain, no goodbye. In-flight unacknowledged operations fail as they
// would in a real crash; acknowledged writes are already on disk. (A
// genuinely killed process needs no call at all.)
func (s *Store) Abandon() {
	s.closeOnce.Do(func() {
		if s.stopCompact != nil {
			close(s.stopCompact) // do not wait: a crash waits for nothing
		}
		s.markClosed()
		s.closeFiles(false)
	})
}

// markClosed rejects new work and stops the pipeline. closed is read
// under sendMu by send and under mu by everything else, so the write
// holds both.
func (s *Store) markClosed() {
	s.sendMu.Lock()
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	close(s.reqs)
	s.sendMu.Unlock()
}

// closeFiles closes all file handles, syncing first if asked.
func (s *Store) closeFiles(sync bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, seg := range s.segs {
		if sync {
			if err := seg.f.Sync(); err != nil && first == nil {
				first = err
			}
		}
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	if s.dirf != nil {
		if err := s.dirf.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
