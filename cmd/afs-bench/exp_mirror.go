package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/block"
	"repro/internal/disk"
	"repro/internal/segstore"
	"repro/internal/stable"
)

// runE13 prices the generalised §4 mirroring layer (internal/stable
// over any block.PairStore):
//
//	(a) the mirrored-write penalty over the in-memory and the durable
//	    backend — one companion write per write, and for the durable
//	    pair two group-commit fsyncs instead of one;
//	(b) corrupt-read fallback latency: a clean local read vs. a read
//	    that detects corruption, fetches the companion copy and
//	    repairs the local one;
//	(c) rejoin cost: replaying an outage's intentions list vs.
//	    restoring the whole store by full copy.
func runE13() error {
	const payloadSize = 4096
	payload := make([]byte, payloadSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	rounds := 2000
	outages := []int{10, 100, 1000}
	copies := 1000
	if *quick {
		rounds, outages, copies = 50, []int{4}, 16
	}
	geo := disk.Geometry{Blocks: 1 << 14, BlockSize: payloadSize}

	newMem := func() block.PairStore { return block.NewServer(disk.MustNew(geo)) }
	newSeg := func() block.PairStore {
		dir, err := os.MkdirTemp("", "afs-e13-")
		if err != nil {
			panic(err)
		}
		st, err := segstore.Open(dir, segstore.Options{BlockSize: payloadSize, Capacity: 1 << 14})
		if err != nil {
			panic(err)
		}
		return st
	}
	cleanups := []func(){}
	cleanup := func() {
		for _, f := range cleanups {
			f()
		}
	}
	defer cleanup()
	track := func(st block.PairStore) block.PairStore {
		if seg, ok := st.(*segstore.Store); ok {
			dir := seg.Dir()
			cleanups = append(cleanups, func() {
				seg.Close()
				os.RemoveAll(dir)
			})
		}
		return st
	}

	fmt.Println("(a) Mirrored-write penalty: single store vs companion pair, same backend:")
	header("backend", "write µs", "read µs", "penalty x")
	for _, bk := range []struct {
		name string
		mk   func() block.PairStore
	}{{"mem", newMem}, {"seg", newSeg}} {
		var singleW, singleR float64
		{
			s := track(bk.mk())
			n, err := s.Alloc(1, payload)
			if err != nil {
				return err
			}
			t0 := time.Now()
			for i := 0; i < rounds; i++ {
				if err := s.Write(1, n, payload); err != nil {
					return err
				}
			}
			singleW = float64(time.Since(t0).Microseconds()) / float64(rounds)
			t0 = time.Now()
			for i := 0; i < rounds; i++ {
				if _, err := s.Read(1, n); err != nil {
					return err
				}
			}
			singleR = float64(time.Since(t0).Microseconds()) / float64(rounds)
			row(bk.name+"/single", singleW, singleR, 1.0)
		}
		{
			p := stable.NewFailoverPair(track(bk.mk()), track(bk.mk()))
			n, err := p.Alloc(1, payload)
			if err != nil {
				return err
			}
			t0 := time.Now()
			for i := 0; i < rounds; i++ {
				if err := p.Write(1, n, payload); err != nil {
					return err
				}
			}
			pairW := float64(time.Since(t0).Microseconds()) / float64(rounds)
			t0 = time.Now()
			for i := 0; i < rounds; i++ {
				if _, err := p.Read(1, n); err != nil {
					return err
				}
			}
			pairR := float64(time.Since(t0).Microseconds()) / float64(rounds)
			row(bk.name+"/pair", pairW, pairR, pairW/singleW)
			record("e13", bk.name+"_write_us_single", singleW)
			record("e13", bk.name+"_write_us_pair", pairW)
			record("e13", bk.name+"_write_penalty", pairW/singleW)
			record("e13", bk.name+"_read_us_pair", pairR)
		}
	}

	fmt.Println("\n(b) Corrupt-read fallback: local read vs companion fetch + repair (mem pair):")
	{
		da, db := disk.MustNew(geo), disk.MustNew(geo)
		p := stable.NewFailoverPair(block.NewServer(da), block.NewServer(db))
		n, err := p.Alloc(1, payload)
		if err != nil {
			return err
		}
		t0 := time.Now()
		for i := 0; i < rounds; i++ {
			if _, err := p.Read(1, n); err != nil {
				return err
			}
		}
		clean := float64(time.Since(t0).Microseconds()) / float64(rounds)
		t0 = time.Now()
		for i := 0; i < rounds; i++ {
			// Re-rot the local copy each round so every read pays the
			// full detect + fetch + repair path.
			if err := da.InjectCorruption(int(n)); err != nil {
				return err
			}
			if _, err := p.Read(1, n); err != nil {
				return err
			}
		}
		fallback := float64(time.Since(t0).Microseconds()) / float64(rounds)
		header("read path", "µs/op")
		row("clean local", clean)
		row("fallback+repair", fallback)
		record("e13", "clean_read_us", clean)
		record("e13", "corrupt_fallback_us", fallback)
	}

	fmt.Println("\n(c) Rejoin: replaying the outage's intentions vs restoring by full copy:")
	header("restored", "path", "µs")
	for _, writes := range outages {
		p := stable.NewFailoverPair(newMem(), newMem())
		a, b := p.Halves()
		n, err := p.Alloc(1, payload)
		if err != nil {
			return err
		}
		b.Crash()
		for i := 0; i < writes; i++ {
			if err := a.Write(1, n, payload); err != nil {
				return err
			}
		}
		t0 := time.Now()
		if err := b.Rejoin(); err != nil {
			return err
		}
		us := float64(time.Since(t0).Microseconds())
		row(writes, "replay", us)
		record("e13", fmt.Sprintf("replay_us_%dwrites", writes), us)
	}
	{
		// Full copy: the survivor's machine crashed too, so the whole
		// store crosses.
		p := stable.NewFailoverPair(newMem(), newMem())
		a, b := p.Halves()
		for i := 0; i < copies; i++ {
			if _, err := p.Alloc(1, payload); err != nil {
				return err
			}
		}
		b.Crash()
		if err := a.Write(1, 1, payload); err != nil {
			return err
		}
		a.Crash()
		if err := a.Rejoin(); err != nil {
			return err
		}
		t0 := time.Now()
		if err := b.Rejoin(); err != nil {
			return err
		}
		us := float64(time.Since(t0).Microseconds())
		row(copies, "full copy", us)
		record("e13", fmt.Sprintf("fullcopy_us_%dblocks", copies), us)
		record("e13", "fullcopy_blocks", float64(b.Stats().FullCopied))
	}

	fmt.Println("\nReads cost the same as a single store; a write pays one companion")
	fmt.Println("round (and on the durable backend a second fsync). Recovery replays")
	fmt.Println("only the outage's intentions — batched — unless the list is lost,")
	fmt.Println("in which case the §4 'compare notes' full copy runs.")
	return nil
}
