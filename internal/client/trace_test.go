package client

import (
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/capability"
	"repro/internal/disk"
	"repro/internal/page"
	"repro/internal/rpc"
	"repro/internal/server"
	"repro/internal/trace"
)

// TestTraceAcrossTCPHops runs the three-machine TCP deployment with
// sampling on and checks that one commit trace stitches spans from all
// machines: the client root, the file server's dispatch and OCC spans
// (returned over the client<->server TCP hop), and the block service's
// spans (returned over the server<->block TCP hop and re-parented under
// the server's rpc spans).
func TestTraceAcrossTCPHops(t *testing.T) {
	// Machine 1: the block service.
	blockSrv := block.NewServer(disk.MustNew(disk.Geometry{Blocks: 1 << 14, BlockSize: 1024}))
	blockTCP, err := rpc.NewTCPServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer blockTCP.Close()
	blockPort := capability.NewPort().Public()
	blockTCP.Register(blockPort, block.Serve(blockSrv))

	// Machine 2: the file service, mounting the remote block store.
	res := rpc.NewResolver()
	res.Set(blockPort, blockTCP.Addr())
	mountCli := rpc.NewTCPClient(res)
	defer mountCli.Close()
	remote, err := block.Dial(mountCli, blockPort)
	if err != nil {
		t.Fatal(err)
	}
	sh := server.NewShared(remote, 1)
	fsTCP, err := rpc.NewTCPServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fsTCP.Close()
	s := server.New(sh, nil)
	fsTCP.Register(s.Port(), s.Handler())

	// Machine 3: the client, sampling every operation.
	cliRes := rpc.NewResolver()
	cliRes.Set(s.Port(), fsTCP.Addr())
	tcpCli := rpc.NewTCPClient(cliRes)
	defer tcpCli.Close()
	c := New(tcpCli, s.Port())
	c.SetTracer(trace.New(1, time.Hour, 16))

	fcap, err := c.CreateFile([]byte("traced over tcp"))
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Update(fcap, UpdateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Write(page.RootPath, []byte("rewritten")); err != nil {
		t.Fatal(err)
	}
	if err := v.Commit(); err != nil {
		t.Fatal(err)
	}

	var tr *trace.Trace
	for _, cand := range c.Tracer().Recent(16) {
		if cand.Root().Name == "commit" {
			tr = cand
			break
		}
	}
	if tr == nil {
		t.Fatal("no commit trace in client ring")
	}

	byID := make(map[uint64]trace.SpanRecord, len(tr.Spans))
	for _, sp := range tr.Spans {
		byID[sp.ID] = sp
	}
	root := tr.Root()
	if root.Layer != "client" || root.Name != "commit" {
		t.Fatalf("root = %s/%s, want client/commit", root.Layer, root.Name)
	}
	layers := make(map[string]bool)
	for _, sp := range tr.Spans {
		layers[sp.Layer] = true
		if sp.ID == root.ID {
			continue
		}
		if _, ok := byID[sp.Parent]; !ok {
			t.Fatalf("span %s/%s arrived over TCP with dangling parent %016x",
				sp.Layer, sp.Name, sp.Parent)
		}
	}
	// client and server machines contribute their own layers; the block
	// machine's spans ("block") crossed two wire hops to get here, and
	// the server's caller-side "rpc" spans bracket them.
	for _, want := range []string{"client", "server", "occ", "rpc", "block"} {
		if !layers[want] {
			t.Fatalf("trace layers %v missing %q", tr.Layers(), want)
		}
	}
	// Every block-machine span must hang under a server-side rpc span:
	// that is the re-parenting contract for the second hop.
	for _, sp := range tr.Spans {
		if sp.Layer != "block" {
			continue
		}
		cur := sp
		for {
			p, ok := byID[cur.Parent]
			if !ok {
				t.Fatalf("block span %q not nested under an rpc span (chain broke at %s/%s)",
					sp.Name, cur.Layer, cur.Name)
			}
			if p.Layer == "rpc" {
				break
			}
			cur = p
		}
	}
}

// TestUntracedClientTCP pins the compatibility contract: a client with
// no tracer against the same traced-capable server works and sends no
// trace context (the server sees an untraced request).
func TestUntracedClientTCP(t *testing.T) {
	blockSrv := block.NewServer(disk.MustNew(disk.Geometry{Blocks: 1 << 12, BlockSize: 1024}))
	sh := server.NewShared(blockSrv, 1)
	fsTCP, err := rpc.NewTCPServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fsTCP.Close()
	s := server.New(sh, nil)
	fsTCP.Register(s.Port(), s.Handler())

	cliRes := rpc.NewResolver()
	cliRes.Set(s.Port(), fsTCP.Addr())
	tcpCli := rpc.NewTCPClient(cliRes)
	defer tcpCli.Close()
	c := New(tcpCli, s.Port())

	fcap, err := c.CreateFile([]byte("plain"))
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Update(fcap, UpdateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Commit(); err != nil {
		t.Fatal(err)
	}
}
