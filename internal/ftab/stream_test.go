package ftab_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/capability"
	"repro/internal/file"
	"repro/internal/ftab"
	"repro/internal/ftabtest"
	"repro/internal/version"
)

// TestBackpressureCoalescesNewestCAS: a burst of commits against one
// object through a tiny, slow-draining queue must coalesce in place —
// same-object CAS updates merge, newest wins — rather than overflow,
// and the peer must still converge on the newest entry after a flush.
func TestBackpressureCoalescesNewestCAS(t *testing.T) {
	m := ftabtest.NewTuned(t, 2, ftabtest.Tune{
		PushBatch: 1,
		PushQueue: 2,
		Delay:     func() time.Duration { return 200 * time.Microsecond },
	})
	obj, err := m.CreateFile(t, 0, []byte("v0"))
	if err != nil {
		t.Fatal(err)
	}
	m.FlushAll(t)
	for i := 0; i < 40; i++ {
		if _, err := m.Commit(t, 0, obj, []byte(fmt.Sprintf("v%d", i+1))); err != nil {
			t.Fatal(err)
		}
	}
	m.FlushAll(t)
	rep := m.Replicas[0].Rep
	if got := rep.Stat.Coalesced.Load(); got == 0 {
		t.Fatalf("no CAS coalescing under backpressure (stats %+v)", rep.StatsSnapshot())
	}
	if got := rep.Stat.Overflows.Load(); got != 0 {
		t.Fatalf("same-object CAS burst overflowed %d times; it must coalesce instead", got)
	}
	e0, _ := m.Replicas[0].Rep.Get(obj)
	e1, err := m.Replicas[1].Rep.Get(obj)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Entry != e0.Entry {
		t.Fatalf("peer entry %d after coalesced stream, origin has %d", e1.Entry, e0.Entry)
	}
	m.CheckConverged(t)
}

// TestOverflowDropsToSnapshotCatchUp: a burst of creates (nothing to
// coalesce) through a tiny queue must drop the peer to the snapshot
// catch-up path — never block, never silently lose an update while
// claiming the peer is in sync — and the heal must bring it back
// byte-equal, exactly like a crashed peer.
func TestOverflowDropsToSnapshotCatchUp(t *testing.T) {
	m := ftabtest.NewTuned(t, 2, ftabtest.Tune{
		PushBatch: 1,
		PushQueue: 2,
		Delay:     func() time.Duration { return 500 * time.Microsecond },
	})
	for i := 0; i < 12; i++ {
		if _, err := m.CreateFile(t, 0, []byte(fmt.Sprintf("f%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	rep := m.Replicas[0].Rep
	if got := rep.Stat.Overflows.Load(); got == 0 {
		t.Fatalf("create burst did not overflow the tiny queue (stats %+v)", rep.StatsSnapshot())
	}
	if got := rep.DownPeers(); got != 1 {
		t.Fatalf("overflowed peer not marked down: %d down peers", got)
	}
	m.HealAll(t)
	if a, b := ftab.Fingerprint(m.Replicas[0].Rep), ftab.Fingerprint(m.Replicas[1].Rep); a != b {
		t.Fatalf("overflow catch-up diverged: %s vs %s", a, b)
	}
	m.CheckConverged(t)
}

// TestCloseFlushesStreams: a clean shutdown (Close with a deadline)
// delivers everything still queued — the peer is byte-equal immediately
// after, with no heal.
func TestCloseFlushesStreams(t *testing.T) {
	m := ftabtest.New(t, 2)
	obj, err := m.CreateFile(t, 0, []byte("v0"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := m.Commit(t, 0, obj, []byte(fmt.Sprintf("v%d", i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Replicas[0].Rep.Close(10 * time.Second) {
		t.Fatal("Close did not drain the streams in time")
	}
	if a, b := ftab.Fingerprint(m.Replicas[0].Rep), ftab.Fingerprint(m.Replicas[1].Rep); a != b {
		t.Fatalf("fingerprints differ after clean shutdown: %s vs %s", a, b)
	}
}

// TestTombstoneSurvivesRejoin is the kill-peer/remove/rejoin
// regression: a replica that was down across a Remove must not
// resurrect the file — not from a snapshot, and not from the §4
// recovery scan, which is why Remove stamps a durable tombstone on the
// storage chain head.
func TestTombstoneSurvivesRejoin(t *testing.T) {
	m := ftabtest.New(t, 3)
	obj, err := m.CreateFile(t, 0, []byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Commit(t, 0, obj, []byte("doomed v2")); err != nil {
		t.Fatal(err)
	}
	m.FlushAll(t)
	m.Crash(2)
	m.Remove(0, obj)
	m.FlushAll(t)
	// The recovery scan sees the tombstone: a table rebuilt from storage
	// alone must not contain the removed file.
	ref, err := file.Rebuild(version.NewStore(m.Store, m.Acct))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Get(obj); !errors.Is(err, file.ErrUnknownFile) {
		t.Fatalf("recovery scan resurrected removed file: %v", err)
	}
	// The rebooted replica pulls snapshots (which carry the tombstone
	// row) and must come back without the file.
	m.Reboot(t, 2)
	m.HealAll(t)
	if _, err := m.Replicas[2].Rep.Get(obj); !errors.Is(err, file.ErrUnknownFile) {
		t.Fatalf("rejoined replica resurrected removed file: %v", err)
	}
	m.CheckConverged(t)
}

// TestRecreateAfterRemove: object numbers are reused after a Remove; a
// chain whose head is not tombstoned is a legitimate re-create and
// must clear the tombstone on every replica.
func TestRecreateAfterRemove(t *testing.T) {
	m := ftabtest.New(t, 2)
	obj, err := m.CreateFile(t, 0, []byte("first life"))
	if err != nil {
		t.Fatal(err)
	}
	m.FlushAll(t)
	m.Remove(0, obj)
	m.FlushAll(t)
	// Re-create under the same object number: a fresh storage chain.
	r0 := m.Replicas[0]
	fcap := r0.Fact.Register(obj)
	vcap := r0.Fact.Register(obj | 1<<22)
	tr, err := version.CreateFile(r0.St, fcap, vcap, []byte("second life"))
	if err != nil {
		t.Fatal(err)
	}
	r0.Rep.Put(obj, file.Entry{Cap: fcap, Entry: tr.Root})
	m.FlushAll(t)
	e1, err := m.Replicas[1].Rep.Get(obj)
	if err != nil {
		t.Fatalf("peer rejected re-create of reused object number: %v", err)
	}
	if e1.Entry != tr.Root {
		t.Fatalf("peer entry %d, want re-created root %d", e1.Entry, tr.Root)
	}
	if a, b := ftab.Fingerprint(m.Replicas[0].Rep), ftab.Fingerprint(m.Replicas[1].Rep); a != b {
		t.Fatalf("re-create diverged: %s vs %s", a, b)
	}
}

// TestSweepLeader: exactly one replica — the lowest configured ID —
// elects itself sweeper, and a single-replica mesh is its own leader.
func TestSweepLeader(t *testing.T) {
	m := ftabtest.New(t, 3)
	leaders := 0
	for i, r := range m.Replicas {
		if r.Rep.SweepLeader() {
			if i != 0 {
				t.Fatalf("replica %d thinks it is the sweeper; the lowest ID must win", i)
			}
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d sweep leaders, want exactly 1", leaders)
	}
	solo := ftab.NewReplicated(ftab.Options{ID: 5, Local: file.NewTable(),
		Ident: capability.NewFactory(capability.NewPort().Public())})
	if !solo.SweepLeader() {
		t.Fatal("a mesh of one must lead its own sweep")
	}
}
