#!/bin/sh
# Doc-drift check: every command-line flag the docs attribute to one of
# the cmd/* binaries must actually be defined by that binary. A doc line
# "contributes" flags when it names afs-server, afs-block or afs-bench;
# each `-flag` token on such a line (preceded by a space, "(" or a
# backtick, so prose hyphens don't match) is then required to appear as
# a flag definition ("flagname") somewhere in cmd/<binary>/*.go.
#
# Run from the repo root: scripts/check-doc-flags.sh
set -eu

status=0
for doc in README.md docs/ARCHITECTURE.md; do
    if [ ! -f "$doc" ]; then
        echo "check-doc-flags: missing $doc" >&2
        exit 1
    fi
    # Emit "cmd flag" pairs, one per line.
    pairs=$(grep -E 'afs-(server|block|bench)' "$doc" | while IFS= read -r line; do
        cmd=$(printf '%s\n' "$line" | grep -oE 'afs-(server|block|bench)' | head -1)
        printf '%s\n' "$line" | grep -oE '[ (`]-[a-z]+(-[a-z]+)*' | sed 's/^.//;s/^-//' | while IFS= read -r f; do
            printf '%s %s\n' "$cmd" "$f"
        done
    done | sort -u)
    [ -n "$pairs" ] || continue
    while IFS=' ' read -r cmd f; do
        [ -n "$cmd" ] || continue
        if ! grep -qE "\"$f\"" "cmd/$cmd"/*.go; then
            echo "$doc names flag -$f for $cmd, but cmd/$cmd does not define it" >&2
            status=1
        fi
    done <<EOF
$pairs
EOF
done
if [ "$status" -eq 0 ]; then
    echo "check-doc-flags: all documented flags exist"
fi
exit "$status"
