// Package block implements the paper's block server (§4): the bottom of
// the storage hierarchy, managing fixed-size blocks of data.
//
// The block service implements "as a minimum commands to allocate,
// deallocate, read and write fixed size blocks of data", with three
// further properties the file service depends on:
//
//   - Protection: a block allocated by account A cannot be touched by
//     account B without A's permission. Accounts are identified by
//     capability; the per-block owner is recorded at allocation.
//   - Atomic writes: "Writing a block must be an atomic action, with an
//     acknowledgement that is returned after the block has been stored on
//     disk. This property is vital for the implementation of atomic
//     update on files."
//   - A simple locking facility: the file service realises its commit
//     critical section by "lock and read a block, examine and modify it,
//     then write and unlock the block again". TestAndSet-style semantics
//     are provided through Lock/Unlock plus the composite LockRead and
//     WriteUnlock operations.
//
// Block servers also support the §4 recovery operation: "given an account
// number, returns a list of block numbers owned by that account", which a
// file server uses with its own redundancy information to rebuild its
// file system after a severe crash.
//
// # Contract
//
// Store is the narrow waist of the storage hierarchy: everything above
// (version trees, OCC, the file servers) consumes it, and every backend
// — the in-memory Server here, the durable segstore log, the stable
// companion pairs, the RPC proxy and the sharded facade — provides it
// with identical observable semantics, enforced by the cross-backend
// contract tests (internal/blocktest):
//
//   - Errors are classified by the sentinel errors above (ErrNoSpace,
//     ErrNotAllocated, ErrNotOwner, ErrLocked, ErrNotLocked), reachable
//     through errors.Is on any backend, local or remote.
//   - A Write acknowledged is a write applied (and, on durable
//     backends, on disk); there are no deferred or buffered-but-acked
//     mutations.
//   - Lock bits are volatile commit-section state, never file state: a
//     backend restart clears them.
//
// The batched MultiStore operations (multi.go) extend the contract with
// documented partial-failure semantics; their first failure is reported
// as a MultiError carrying the failing position, so batching layers can
// attribute errors without parsing text. Backends may additionally
// report allocation headroom (UsageReporter) and operation counters
// (StatsReporter); the sharded facade (internal/shard) uses both to
// place allocations and to expose per-shard statistics.
package block

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/disk"
)

// Num is a block number. The paper packs block numbers into 28 bits next
// to 4 flag bits; NumBits and MaxNum enforce that bound here so the page
// layer's reference encoding is faithful.
type Num uint32

// NumBits is the width of a block number (the paper's 28 bits).
const NumBits = 28

// MaxNum is the largest representable block number.
const MaxNum Num = 1<<NumBits - 1

// NilNum is the reserved "no block" value. Block 0 is never allocated so
// that nil references are unambiguous, mirroring the paper's nil base and
// commit references.
const NilNum Num = 0

// Errors returned by the block service.
var (
	// ErrNoSpace reports that the underlying disk is full.
	ErrNoSpace = errors.New("block: no space")
	// ErrNotAllocated reports an operation on a free block.
	ErrNotAllocated = errors.New("block: not allocated")
	// ErrNotOwner reports an access by an account that does not own the
	// block.
	ErrNotOwner = errors.New("block: not owner")
	// ErrLocked reports a Lock on an already locked block.
	ErrLocked = errors.New("block: locked")
	// ErrNotLocked reports an Unlock of an unlocked block.
	ErrNotLocked = errors.New("block: not locked")
	// ErrCorrupt reports stored data that failed its integrity check —
	// media decay on the simulated disk, a bad CRC in the segment log.
	// Every backend maps its native corruption error onto this sentinel
	// (local or over the wire), which is what lets the stable-storage
	// layer fall back to the companion copy identically over any medium.
	ErrCorrupt = errors.New("block: corrupt")
	// ErrCollision reports a §4 companion-pair collision: two clients
	// allocated the same number or wrote the same block through
	// different halves simultaneously. The caller redoes the operation,
	// typically after a random wait.
	ErrCollision = errors.New("block: companion collision")
)

// corruptError brands a backend's native corruption error with the
// shared ErrCorrupt sentinel while keeping the original chain intact.
type corruptError struct{ err error }

func (e *corruptError) Error() string   { return e.err.Error() }
func (e *corruptError) Unwrap() []error { return []error{ErrCorrupt, e.err} }

// MarkCorrupt returns err branded so errors.Is(·, ErrCorrupt) holds,
// without disturbing err's own chain. Backends use it to map their
// native corruption errors (disk.ErrCorrupt, segstore's bad CRC) onto
// the shared sentinel.
func MarkCorrupt(err error) error {
	if err == nil || errors.Is(err, ErrCorrupt) {
		return err
	}
	return &corruptError{err}
}

// Account identifies a block-server client for protection and recovery.
// The file servers each hold one account capability.
type Account uint32

// Store is the interface the file service layers consume. Both the plain
// Server here and the paired stable-storage servers satisfy it.
type Store interface {
	// BlockSize returns the fixed block payload size in bytes.
	BlockSize() int
	// Alloc allocates a fresh block owned by account, writes data into
	// it atomically, and returns its number.
	Alloc(account Account, data []byte) (Num, error)
	// Free releases a block.
	Free(account Account, n Num) error
	// Read returns the contents of block n.
	Read(account Account, n Num) ([]byte, error)
	// Write replaces the contents of block n atomically.
	Write(account Account, n Num, data []byte) error
	// Lock acquires the block's mutual-exclusion bit; it fails with
	// ErrLocked if already held. Locks are advisory and scoped to the
	// commit critical section (§5.2).
	Lock(account Account, n Num) error
	// Unlock releases the lock bit.
	Unlock(account Account, n Num) error
	// Recover lists all block numbers owned by account, for crash
	// recovery of a file server's tables.
	Recover(account Account) ([]Num, error)
}

// PairStore is the backend surface a §4 companion-pair half builds on:
// a Store that can additionally mirror its partner's allocation choice
// (Claim) and drop volatile lock state wholesale (ClearLocks). Every
// backend in this repo qualifies — the in-memory Server, the durable
// segstore, the RPC proxy (cmdClaim/cmdClearLocks carry both operations
// over the wire) and the sharded facade — so a mirrored pair can wrap
// any of them, and a pair of pairs or a shard of pairs composes freely.
type PairStore interface {
	Store
	// Claim allocates the specific block number n for account, failing
	// if it is already taken. A failed Claim at the companion is
	// exactly the paper's §4 "allocate collision".
	Claim(account Account, n Num) error
	// ClearLocks drops every lock bit: lock bits are volatile commit
	// critical-section state (§5.2), never file state, so a restarted
	// file server clears them wholesale.
	ClearLocks()
}

// numShards is the lock-stripe count. Block state is sharded by number
// so multi-block operations and concurrent single operations on
// different blocks never serialise on one mutex; 64 stripes keeps the
// per-stripe footprint trivial while making collisions rare even at
// high fan-in. Must be a power of two.
const numShards = 64

// shard holds the allocation and lock state for the block numbers that
// hash to it.
type shard struct {
	mu     sync.Mutex
	owner  map[Num]Account
	locked map[Num]bool
}

// Server is a single block server backed by one simulated disk. Block
// state (owner, lock bit) is striped across numShards independently
// locked shards; allocation scans serialise only on allocMu, never on
// readers or writers of existing blocks.
type Server struct {
	d *disk.Disk

	shards [numShards]shard

	// epoch backs EpochStore for the process lifetime (the RAM server
	// has no persistence to tie it to).
	epoch atomic.Uint64

	// allocMu serialises allocation scans and the hint; the scan still
	// takes each probed shard's lock to claim the number.
	allocMu sync.Mutex
	// nextHint speeds allocation scans; correctness does not depend on it.
	nextHint Num

	stats counters
}

// Stats counts operations on a Server. The same shape is the common
// counter snapshot every backend can report through StatsReporter.
type Stats struct {
	Allocs, Frees, Reads, Writes, Locks, Unlocks uint64
	LockConflicts                                uint64
	// Syncs counts fsyncs issued by durable backends; zero on the
	// RAM-backed server.
	Syncs uint64
}

// Add accumulates o into s, for aggregating per-shard snapshots.
func (s *Stats) Add(o Stats) {
	s.Allocs += o.Allocs
	s.Frees += o.Frees
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.Locks += o.Locks
	s.Unlocks += o.Unlocks
	s.LockConflicts += o.LockConflicts
	s.Syncs += o.Syncs
}

// Usage reports a store's allocation headroom.
type Usage struct {
	// Capacity is the number of allocatable blocks.
	Capacity int
	// InUse is the number of currently allocated blocks.
	InUse int
}

// UsageReporter is the optional interface for backends that can report
// allocation headroom. The sharded facade seeds its placement heuristic
// from it; the wire protocol proxies it with cmdUsage.
type UsageReporter interface {
	Usage() (Usage, error)
}

// StatsReporter is the optional interface for backends that expose
// operation counters in the common Stats shape. The wire protocol
// proxies it with cmdStats, so per-shard fsync and operation counts are
// observable across the network.
type StatsReporter interface {
	BlockStats() (Stats, error)
}

// EpochStore is the optional interface for backends that keep a
// monotonic epoch number alongside their data. The stable-storage layer
// uses it to detect boot-time divergence of a §4 companion pair: the
// surviving half bumps its epoch the moment its companion goes down, so
// a half that missed writes is exactly the half with the lower epoch —
// detectable by a freshly started pair with no memory of the outage
// (stable.Pair.DetectStale). Durable backends persist the epoch with
// the data (segstore writes an epoch file); the in-memory server keeps
// it for the process lifetime; the wire protocol proxies both
// operations, so remote halves participate.
type EpochStore interface {
	// Epoch returns the stored epoch (zero for a fresh store).
	Epoch() (uint64, error)
	// SetEpoch stores e; durable backends must persist it before
	// acknowledging.
	SetEpoch(e uint64) error
}

// counters is the lock-free internal form of Stats.
type counters struct {
	allocs, frees, reads, writes, locks, unlocks atomic.Uint64
	lockConflicts                                atomic.Uint64
}

// shardOf returns the shard owning block n.
func (s *Server) shardOf(n Num) *shard {
	return &s.shards[n&(numShards-1)]
}

// NewServer creates a block server on d. Block 0 is reserved as NilNum.
func NewServer(d *disk.Disk) *Server {
	s := &Server{d: d, nextHint: 1}
	for i := range s.shards {
		s.shards[i].owner = make(map[Num]Account)
		s.shards[i].locked = make(map[Num]bool)
	}
	return s
}

// BlockSize implements Store.
func (s *Server) BlockSize() int { return s.d.Geometry().BlockSize }

// Capacity returns the number of allocatable blocks (excluding NilNum).
func (s *Server) Capacity() int { return s.d.Geometry().Blocks - 1 }

// InUse returns the number of currently allocated blocks.
func (s *Server) InUse() int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		total += len(sh.owner)
		sh.mu.Unlock()
	}
	return total
}

// Stats returns a snapshot of the operation counters.
func (s *Server) Stats() Stats {
	return Stats{
		Allocs:        s.stats.allocs.Load(),
		Frees:         s.stats.frees.Load(),
		Reads:         s.stats.reads.Load(),
		Writes:        s.stats.writes.Load(),
		Locks:         s.stats.locks.Load(),
		Unlocks:       s.stats.unlocks.Load(),
		LockConflicts: s.stats.lockConflicts.Load(),
	}
}

// Usage implements UsageReporter.
func (s *Server) Usage() (Usage, error) {
	return Usage{Capacity: s.Capacity(), InUse: s.InUse()}, nil
}

// BlockStats implements StatsReporter.
func (s *Server) BlockStats() (Stats, error) { return s.Stats(), nil }

// Epoch implements EpochStore.
func (s *Server) Epoch() (uint64, error) { return s.epoch.Load(), nil }

// SetEpoch implements EpochStore.
func (s *Server) SetEpoch(e uint64) error {
	s.epoch.Store(e)
	return nil
}

// Disk exposes the underlying disk for fault injection in tests and the
// failure-mode benchmarks.
func (s *Server) Disk() *disk.Disk { return s.d }

// allocNum reserves the next free block number, claiming it in its
// shard. Caller holds s.allocMu.
func (s *Server) allocNum(account Account) (Num, error) {
	total := Num(s.d.Geometry().Blocks)
	if total > MaxNum {
		total = MaxNum
	}
	for i := Num(0); i < total; i++ {
		n := (s.nextHint + i) % total
		if n == NilNum {
			continue
		}
		sh := s.shardOf(n)
		sh.mu.Lock()
		_, used := sh.owner[n]
		if !used {
			sh.owner[n] = account
		}
		sh.mu.Unlock()
		if !used {
			s.nextHint = n + 1
			return n, nil
		}
	}
	return NilNum, ErrNoSpace
}

// checkOwner verifies account owns n in sh. Caller holds sh.mu.
func (sh *shard) checkOwner(account Account, n Num) error {
	own, ok := sh.owner[n]
	if !ok {
		return fmt.Errorf("block %d: %w", n, ErrNotAllocated)
	}
	if own != account {
		return fmt.Errorf("block %d owned by %d, access by %d: %w", n, own, account, ErrNotOwner)
	}
	return nil
}

// unclaim releases a number reserved by allocNum whose data write
// failed.
func (s *Server) unclaim(n Num) {
	sh := s.shardOf(n)
	sh.mu.Lock()
	delete(sh.owner, n)
	sh.mu.Unlock()
}

// Alloc implements Store.
func (s *Server) Alloc(account Account, data []byte) (Num, error) {
	s.allocMu.Lock()
	n, err := s.allocNum(account)
	s.allocMu.Unlock()
	if err != nil {
		return NilNum, err
	}
	s.stats.allocs.Add(1)

	if err := s.d.Write(int(n), data); err != nil {
		s.unclaim(n)
		return NilNum, fmt.Errorf("block %d: %w", n, err)
	}
	return n, nil
}

// Claim allocates a *specific* block number for account, failing if it is
// already taken. The stable-storage companion protocol uses Claim to
// mirror its partner's allocation choice; a failed Claim is exactly the
// paper's §4 "allocate collision".
func (s *Server) Claim(account Account, n Num) error {
	if n == NilNum || int(n) >= s.d.Geometry().Blocks {
		return fmt.Errorf("block %d: %w", n, disk.ErrBadBlock)
	}
	sh := s.shardOf(n)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, used := sh.owner[n]; used {
		return fmt.Errorf("block %d: already allocated", n)
	}
	sh.owner[n] = account
	s.stats.allocs.Add(1)
	return nil
}

// Free implements Store.
func (s *Server) Free(account Account, n Num) error {
	sh := s.shardOf(n)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.checkOwner(account, n); err != nil {
		return err
	}
	delete(sh.owner, n)
	delete(sh.locked, n)
	s.stats.frees.Add(1)
	return nil
}

// Read implements Store.
func (s *Server) Read(account Account, n Num) ([]byte, error) {
	sh := s.shardOf(n)
	sh.mu.Lock()
	err := sh.checkOwner(account, n)
	sh.mu.Unlock()
	if err != nil {
		return nil, err
	}
	s.stats.reads.Add(1)
	data, err := s.d.Read(int(n))
	return data, diskErr(err)
}

// diskErr maps the simulated disk's corruption error onto the shared
// block.ErrCorrupt sentinel; other disk errors pass through.
func diskErr(err error) error {
	if err != nil && errors.Is(err, disk.ErrCorrupt) {
		return MarkCorrupt(err)
	}
	return err
}

// Write implements Store.
func (s *Server) Write(account Account, n Num, data []byte) error {
	sh := s.shardOf(n)
	sh.mu.Lock()
	err := sh.checkOwner(account, n)
	sh.mu.Unlock()
	if err != nil {
		return err
	}
	s.stats.writes.Add(1)
	return s.d.Write(int(n), data)
}

// Lock implements Store. A failed Lock is the §5.2 signal that another
// server is inside the commit critical section for this version page.
func (s *Server) Lock(account Account, n Num) error {
	sh := s.shardOf(n)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.checkOwner(account, n); err != nil {
		return err
	}
	if sh.locked[n] {
		s.stats.lockConflicts.Add(1)
		return fmt.Errorf("block %d: %w", n, ErrLocked)
	}
	sh.locked[n] = true
	s.stats.locks.Add(1)
	return nil
}

// Unlock implements Store.
func (s *Server) Unlock(account Account, n Num) error {
	sh := s.shardOf(n)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.checkOwner(account, n); err != nil {
		return err
	}
	if !sh.locked[n] {
		return fmt.Errorf("block %d: %w", n, ErrNotLocked)
	}
	delete(sh.locked, n)
	s.stats.unlocks.Add(1)
	return nil
}

// Recover implements Store: the §4 recovery scan.
func (s *Server) Recover(account Account) ([]Num, error) {
	var out []Num
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for n, a := range sh.owner {
			if a == account {
				out = append(out, n)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// ClearLocks drops every lock bit; used when a file server restarts after
// a crash (lock bits are volatile commit-section state, not file state).
func (s *Server) ClearLocks() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.locked = make(map[Num]bool)
		sh.mu.Unlock()
	}
}

var _ Store = (*Server)(nil)
var _ MultiStore = (*Server)(nil)
var _ PairStore = (*Server)(nil)
var _ EpochStore = (*Server)(nil)

// ReadMulti implements MultiStore (all-or-nothing, see the contract).
func (s *Server) ReadMulti(account Account, ns []Num) ([][]byte, error) {
	out := make([][]byte, len(ns))
	for i, n := range ns {
		sh := s.shardOf(n)
		sh.mu.Lock()
		err := sh.checkOwner(account, n)
		sh.mu.Unlock()
		if err != nil {
			return nil, multiErr("read", i, len(ns), err)
		}
		data, err := s.d.Read(int(n))
		if err != nil {
			return nil, multiErr("read", i, len(ns), diskErr(err))
		}
		out[i] = data
	}
	s.stats.reads.Add(uint64(len(ns)))
	return out, nil
}

// WriteMulti implements MultiStore (per-block independence, first error
// returned).
func (s *Server) WriteMulti(account Account, ns []Num, data [][]byte) error {
	if len(ns) != len(data) {
		return errMultiShape
	}
	var first error
	for i, n := range ns {
		sh := s.shardOf(n)
		sh.mu.Lock()
		err := sh.checkOwner(account, n)
		sh.mu.Unlock()
		if err == nil {
			s.stats.writes.Add(1)
			err = s.d.Write(int(n), data[i])
		}
		if err != nil && first == nil {
			first = multiErr("write", i, len(ns), err)
		}
	}
	return first
}

// AllocMulti implements MultiStore (all-or-nothing: a failure frees the
// blocks allocated so far).
func (s *Server) AllocMulti(account Account, data [][]byte) ([]Num, error) {
	// One trip through the allocator for all numbers, then the data
	// writes outside any lock.
	out := make([]Num, 0, len(data))
	s.allocMu.Lock()
	for range data {
		n, err := s.allocNum(account)
		if err != nil {
			s.allocMu.Unlock()
			for _, got := range out {
				s.unclaim(got)
			}
			return nil, multiErr("alloc", len(out), len(data), err)
		}
		out = append(out, n)
	}
	s.allocMu.Unlock()
	for i, n := range out {
		if err := s.d.Write(int(n), data[i]); err != nil {
			for _, got := range out {
				s.unclaim(got)
			}
			return nil, multiErr("alloc", i, len(data), fmt.Errorf("block %d: %w", n, err))
		}
	}
	s.stats.allocs.Add(uint64(len(out)))
	return out, nil
}

// FreeMulti implements MultiStore (per-block independence, first error
// returned).
func (s *Server) FreeMulti(account Account, ns []Num) error {
	var first error
	for i, n := range ns {
		if err := s.Free(account, n); err != nil && first == nil {
			first = multiErr("free", i, len(ns), err)
		}
	}
	return first
}

// Restore rebuilds the allocation table from an owner map, as a block
// server does after a crash from its companion's notes plus client
// redundancy data. Existing state is replaced.
func (s *Server) Restore(owner map[Num]Account) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.owner = make(map[Num]Account)
		sh.locked = make(map[Num]bool)
		sh.mu.Unlock()
	}
	for n, a := range owner {
		sh := s.shardOf(n)
		sh.mu.Lock()
		sh.owner[n] = a
		sh.mu.Unlock()
	}
}

// Owners returns a copy of the allocation table, for companion recovery.
func (s *Server) Owners() map[Num]Account {
	out := make(map[Num]Account)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for n, a := range sh.owner {
			out[n] = a
		}
		sh.mu.Unlock()
	}
	return out
}

// WithLock runs fn while holding the lock on block n, implementing the
// §5.2 critical section "lock and read a block, examine and modify it,
// then write and unlock the block again" as a convenience. fn receives
// the block contents and returns the new contents (nil to skip the
// write-back).
func WithLock(st Store, account Account, n Num, fn func(data []byte) ([]byte, error)) error {
	if err := st.Lock(account, n); err != nil {
		return err
	}
	defer func() {
		// Unlock failure after a successful body means the store lost
		// the lock table (crash); the caller's retry logic handles it.
		_ = st.Unlock(account, n)
	}()
	data, err := st.Read(account, n)
	if err != nil {
		return err
	}
	out, err := fn(data)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return st.Write(account, n, out)
}
