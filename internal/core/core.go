// Package core assembles complete Amoeba File Service deployments: block
// storage (optionally the §4 paired stable storage), any number of file
// server processes on a shared transport, the garbage collector, and
// clients with failover. It is the harness the examples, the command-line
// tools and the crash experiments (E8/E9) drive.
package core

import (
	"fmt"
	"time"

	"repro/internal/archive"
	"repro/internal/block"
	"repro/internal/capability"
	"repro/internal/client"
	"repro/internal/disk"
	"repro/internal/file"
	"repro/internal/ftab"
	"repro/internal/gc"
	"repro/internal/rpc"
	"repro/internal/server"
	"repro/internal/stable"
	"repro/internal/trace"
	"repro/internal/version"
)

// Config describes a cluster.
type Config struct {
	// Servers is the number of file server processes (default 1).
	Servers int
	// Peers, when > 1, splits the cluster into that many independent
	// service instances ("machines"): each instance has its own Shared
	// state — file table, capability factory, object band — and the
	// tables are kept convergent through the replicated file table
	// (internal/ftab) over the in-proc network, exactly as
	// `afs-server -peers` does over TCP. Server i serves instance
	// i % Peers. Default 1: one Shared for all servers, the
	// single-machine special case.
	Peers int
	// Store, when set, is a pre-built block store backend (e.g. a
	// durable segstore.Store) used instead of a fresh simulated disk;
	// DiskBlocks, BlockSize, StablePair and the disk cost fields are
	// ignored. The caller keeps ownership: closing it after the cluster
	// is done is the caller's job.
	Store block.Store
	// MirrorStores, when it names exactly two backends, joins them as a
	// §4 companion pair and serves the file system from the pair: every
	// block lives on both backends, reads fall back (and repair) on
	// corruption, and either backend can die without data loss. Any
	// block.PairStore works — two durable segstores on different disks,
	// two remote afs-block mounts, a mix. Overrides Store; StablePair
	// is the simulated-disk special case of this. Ownership stays with
	// the caller, as with Store.
	MirrorStores []block.PairStore
	// DiskBlocks and BlockSize shape the simulated disks (defaults
	// 1<<16 x 4096).
	DiskBlocks int
	BlockSize  int
	// StablePair stores every block on two companion block servers (§4).
	StablePair bool
	// Retain is the GC's committed-version horizon per file (default 4).
	Retain int
	// Archive enables the content-addressed archive tier over a fresh
	// in-memory backing store: committed versions falling past the
	// retention horizon are demoted (rewritten hash-addressed,
	// deduplicated, logged as snapshots) instead of deleted, and the
	// servers answer the snapshot commands.
	Archive bool
	// ArchiveStore, when set, is a pre-built backing store for the
	// archive tier (e.g. a durable segstore) and implies Archive. Its
	// block size must be at least the front tier's plus
	// archive.FrameOverhead so any demoted page fits its frame.
	// Ownership stays with the caller, as with Store.
	ArchiveStore block.Store
	// NetLatency simulates transport delay per message leg.
	NetLatency time.Duration
	// ReadCost and WriteCost simulate disk service times.
	ReadCost  time.Duration
	WriteCost time.Duration
	// LockPoll and LockPatience tune the §5.3 waiters (defaults suit
	// tests; zero keeps the server defaults).
	LockPoll     time.Duration
	LockPatience time.Duration
	// TraceSample, when positive, turns on distributed tracing: clients
	// made with Client() sample that ratio of operations ([0,1]) into
	// span trees and report them back to the service, where they land in
	// the cluster Tracer's ring. TraceSlow marks traces at least that
	// long as slow (kept in the slowest-N list).
	TraceSample float64
	TraceSlow   time.Duration
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Servers <= 0 {
		c.Servers = 1
	}
	if c.Peers <= 0 {
		c.Peers = 1
	}
	if c.Servers < c.Peers {
		c.Servers = c.Peers
	}
	if c.DiskBlocks <= 0 {
		c.DiskBlocks = 1 << 16
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 4096
	}
	if c.Retain <= 0 {
		c.Retain = 4
	}
	return c
}

// Cluster is a running deployment.
type Cluster struct {
	Cfg Config
	Net *rpc.Network
	// Shared is the first (or only) service instance's shared state;
	// Shareds lists every instance when Cfg.Peers > 1.
	Shared  *server.Shared
	Shareds []*server.Shared
	// Tables lists the replicated file tables, one per instance, when
	// Cfg.Peers > 1 (nil otherwise: the single instance uses the plain
	// in-process table).
	Tables  []*ftab.Replicated
	Servers []*server.Server
	GC      *gc.Collector
	// Archive is the content-addressed archive tier (nil when the
	// cluster runs without one), and Archiver the demote engine the
	// collector feeds.
	Archive  *archive.Store
	Archiver *archive.Archiver
	// Tracer is the service-side trace sink (nil unless Cfg.TraceSample
	// is positive): client-assembled traces reported over CmdTraceReport
	// land here, for /debug/traces-style inspection.
	Tracer *trace.Tracer

	pair   *stable.Pair
	nextID int
	instOf []int // service instance of each server, parallel to Servers
}

// netRegistry backs a server's update ports with the network, grouped
// under the server's process group so a crash kills them.
type netRegistry struct {
	net   *rpc.Network
	group string
}

func (r netRegistry) Register(p capability.Port) {
	// The handler answers liveness probes; any reply means "alive".
	_ = r.net.Register(r.group, p, func(req *rpc.Message) *rpc.Message {
		return req.Reply(rpc.StatusOK)
	})
}

func (r netRegistry) Unregister(p capability.Port) { r.net.Unregister(p) }
func (r netRegistry) Alive(p capability.Port) bool { return r.net.Alive(p) }

// NewCluster builds and starts a cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	geo := disk.Geometry{
		Blocks:    cfg.DiskBlocks,
		BlockSize: cfg.BlockSize,
		ReadCost:  cfg.ReadCost,
		WriteCost: cfg.WriteCost,
	}
	var store block.Store
	var pair *stable.Pair
	if len(cfg.MirrorStores) > 0 {
		if len(cfg.MirrorStores) != 2 {
			return nil, fmt.Errorf("core: MirrorStores needs exactly 2 backends, got %d", len(cfg.MirrorStores))
		}
		pair = stable.NewFailoverPair(cfg.MirrorStores[0], cfg.MirrorStores[1])
		store = pair
	} else if cfg.Store != nil {
		store = cfg.Store
	} else if cfg.StablePair {
		da, err := disk.New(geo)
		if err != nil {
			return nil, err
		}
		db, err := disk.New(geo)
		if err != nil {
			return nil, err
		}
		pair = stable.NewFailoverPair(block.NewServer(da), block.NewServer(db))
		store = pair
	} else {
		d, err := disk.New(geo)
		if err != nil {
			return nil, err
		}
		store = block.NewServer(d)
	}

	var arch *archive.Store
	var archiver *archive.Archiver
	if cfg.Archive || cfg.ArchiveStore != nil {
		backing := cfg.ArchiveStore
		if backing == nil {
			ad, err := disk.New(disk.Geometry{
				Blocks:    cfg.DiskBlocks,
				BlockSize: store.BlockSize() + archive.FrameOverhead,
				ReadCost:  cfg.ReadCost,
				WriteCost: cfg.WriteCost,
			})
			if err != nil {
				return nil, err
			}
			backing = block.NewServer(ad)
		}
		if backing.BlockSize() < store.BlockSize()+archive.FrameOverhead {
			return nil, fmt.Errorf("core: archive backing block size %d cannot frame front-tier %d-byte pages (need >= %d)",
				backing.BlockSize(), store.BlockSize(), store.BlockSize()+archive.FrameOverhead)
		}
		var err error
		arch, err = archive.New(backing, 1)
		if err != nil {
			return nil, err
		}
		archiver = &archive.Archiver{Front: version.NewStore(store, 1), Store: arch, Acct: 1}
	}

	net := rpc.NewNetwork()
	net.SetLatency(cfg.NetLatency)
	c := &Cluster{Cfg: cfg, Net: net, pair: pair, Archive: arch, Archiver: archiver}
	if cfg.TraceSample > 0 {
		// The sink's own sampling ratio is irrelevant — clients sample;
		// it only ingests reported traces.
		c.Tracer = trace.New(0, cfg.TraceSlow, 256)
	}
	for i := 0; i < cfg.Peers; i++ {
		sh := server.NewShared(store, 1)
		sh.Archive = arch
		sh.Tracer = c.Tracer
		c.Shareds = append(c.Shareds, sh)
	}
	c.Shared = c.Shareds[0]
	if cfg.Peers > 1 {
		// Several service instances over one store, as between real
		// machines: each instance gets its own object-number band and a
		// replica of the file table on its well-known ftab port.
		for i, sh := range c.Shareds {
			sh.SetID(uint32(i))
			inst := i
			rep := ftab.NewReplicated(ftab.Options{
				ID:        uint32(i),
				Local:     sh.Table.(*file.Table),
				Store:     version.NewStore(store, sh.Acct),
				Ident:     sh.Fact,
				PortAlive: net.Alive,
				Live:      func() []block.Num { return c.instanceLive(inst) },
			})
			sh.Table = rep
			c.Tables = append(c.Tables, rep)
		}
		for i, rep := range c.Tables {
			for j := range c.Tables {
				if j != i {
					rep.AddPeer(uint32(j), net)
				}
			}
			if err := net.Register(c.tableGroup(i), ftab.PortFor(uint32(i)), rep.Handler()); err != nil {
				return nil, err
			}
		}
		for _, rep := range c.Tables {
			rep.Bootstrap()
		}
	}
	for i := 0; i < cfg.Servers; i++ {
		if _, err := c.AddServerOn(i % cfg.Peers); err != nil {
			return nil, err
		}
	}
	c.GC = gc.New(version.NewStore(store, c.Shared.Acct), c.Shared.Table, cfg.Retain, c.LiveVersions)
	if archiver != nil {
		c.GC.Demote = func(object uint32, root block.Num) error {
			_, _, err := archiver.Demote(object, root)
			return err
		}
	}
	return c, nil
}

// FlushTables drains the replicated tables' asynchronous push streams:
// when it returns true, every table mutation made so far has reached
// every peer instance that is up. Mutations are acknowledged before
// they propagate (ack after local durability), so anything that writes
// through one instance and immediately reads through another — tests,
// orchestration — quiesces here first. A no-op on single-instance
// clusters.
func (c *Cluster) FlushTables(timeout time.Duration) bool {
	ok := true
	for _, rep := range c.Tables {
		if !rep.Flush(timeout) {
			ok = false
		}
	}
	return ok
}

// Close shuts down the replicated tables' push streams, flushing
// pending updates for at most the given timeout per instance
// (non-positive waits indefinitely). It reports whether everything
// drained; on false, peers resync by snapshot on their next heal.
func (c *Cluster) Close(timeout time.Duration) bool {
	ok := true
	for _, rep := range c.Tables {
		if !rep.Close(timeout) {
			ok = false
		}
	}
	return ok
}

// group names a server's process group on the network.
func (c *Cluster) group(id int) string { return fmt.Sprintf("afs-%d", id) }

// tableGroup names an instance's table-replica process group.
func (c *Cluster) tableGroup(inst int) string { return fmt.Sprintf("ftab-%d", inst) }

// AddServer starts one more file server process on the first service
// instance and returns its index. Used both for initial bring-up and to
// replace crashed servers; multi-instance clusters place servers with
// AddServerOn.
func (c *Cluster) AddServer() (int, error) { return c.AddServerOn(0) }

// AddServerOn starts one more file server process on service instance
// inst and returns the server's index.
func (c *Cluster) AddServerOn(inst int) (int, error) {
	if inst < 0 || inst >= len(c.Shareds) {
		return 0, fmt.Errorf("core: no service instance %d (have %d)", inst, len(c.Shareds))
	}
	id := c.nextID
	c.nextID++
	s := server.New(c.Shareds[inst], c.Net.Alive)
	s.UsePortRegistry(netRegistry{net: c.Net, group: c.group(id)})
	if c.Cfg.LockPoll > 0 {
		s.LockManager().Poll = c.Cfg.LockPoll
	}
	if c.Cfg.LockPatience > 0 {
		s.LockManager().Patience = c.Cfg.LockPatience
	}
	if err := c.Net.Register(c.group(id), s.Port(), s.Handler()); err != nil {
		return 0, err
	}
	c.Servers = append(c.Servers, s)
	c.instOf = append(c.instOf, inst)
	return len(c.Servers) - 1, nil
}

// instanceLive reports the live version roots of instance inst's own
// servers: what its table replica serves to peers' collectors.
func (c *Cluster) instanceLive(inst int) []block.Num {
	var out []block.Num
	for i, s := range c.Servers {
		if c.instOf[i] != inst {
			continue
		}
		if c.Net.Alive(s.Port()) {
			out = append(out, s.LiveVersions()...)
		}
	}
	return out
}

// CrashServer kills server i: its process state and every port it serves
// (including its updates' lock ports) die at once.
func (c *Cluster) CrashServer(i int) {
	if i < 0 || i >= len(c.Servers) {
		return
	}
	c.Servers[i].Crash()
	// The group index equals the server's creation id as long as
	// servers are only appended; recompute from position.
	c.Net.Crash(c.group(i))
}

// Ports lists the live servers' ports, preferred order.
func (c *Cluster) Ports() []capability.Port {
	out := make([]capability.Port, 0, len(c.Servers))
	for _, s := range c.Servers {
		if c.Net.Alive(s.Port()) {
			out = append(out, s.Port())
		}
	}
	return out
}

// AllPorts lists every server port regardless of liveness (clients
// discover death by failing over).
func (c *Cluster) AllPorts() []capability.Port {
	out := make([]capability.Port, 0, len(c.Servers))
	for _, s := range c.Servers {
		out = append(out, s.Port())
	}
	return out
}

// Client creates a client connected to all servers. With tracing
// configured, each client gets its own sampling tracer and ships every
// assembled trace back to the service (fire-and-forget) so cross-layer
// traces are inspectable in one place.
func (c *Cluster) Client() *client.Client {
	cl := client.New(c.Net, c.AllPorts()...)
	if c.Cfg.TraceSample > 0 {
		t := trace.New(c.Cfg.TraceSample, c.Cfg.TraceSlow, 64)
		t.OnTrace = func(tr *trace.Trace) { go cl.ReportTrace(tr) }
		cl.SetTracer(t)
	}
	return cl
}

// LiveVersions aggregates the live version roots of every live server,
// for GC pinning.
func (c *Cluster) LiveVersions() []block.Num {
	var out []block.Num
	for _, s := range c.Servers {
		if c.Net.Alive(s.Port()) {
			out = append(out, s.LiveVersions()...)
		}
	}
	return out
}

// Pair returns the stable-storage pair when the cluster uses one.
func (c *Cluster) Pair() *stable.Pair { return c.pair }

// RecoverTable is the process-restart recovery path: rebuild the file
// table from storage (§4 recovery scan) and adopt it into this
// cluster's fresh service identity, minting new owner capabilities for
// the recovered files (the old secrets died with the old process). It
// returns the new capabilities by object number. Adoption is guarded
// and idempotent (server.Shared.AdoptTable): instances racing the same
// recovery converge on one set of capabilities.
func (c *Cluster) RecoverTable() (map[uint32]capability.Capability, error) {
	return c.RecoverTableOn(0)
}

// RecoverTableOn runs the recovery adoption for service instance inst.
func (c *Cluster) RecoverTableOn(inst int) (map[uint32]capability.Capability, error) {
	if inst < 0 || inst >= len(c.Shareds) {
		return nil, fmt.Errorf("core: no service instance %d (have %d)", inst, len(c.Shareds))
	}
	sh := c.Shareds[inst]
	st := version.NewStore(sh.Store, sh.Acct)
	t, err := file.Rebuild(st)
	if err != nil {
		return nil, err
	}
	return sh.AdoptTable(t), nil
}

// RebuildTable reconstructs the file table from storage (total-crash
// recovery, §4): the result replaces the shared table's contents.
func (c *Cluster) RebuildTable() error {
	st := version.NewStore(c.Shared.Store, c.Shared.Acct)
	t, err := file.Rebuild(st)
	if err != nil {
		return err
	}
	for _, obj := range c.Shared.Table.Objects() {
		c.Shared.Table.Remove(obj)
	}
	for obj, e := range t.Entries() {
		c.Shared.Table.Put(obj, e)
	}
	return nil
}
