package archive

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/block"
)

// The snapshot log records one entry per demoted commit: which file
// object, its per-file snapshot sequence, the archive block holding the
// canonical version page, and the snapshot score — a Merkle hash over
// the whole archived tree (see Archiver). The log needs no file of its
// own: each entry is stored as a KindSnap record in the archive itself,
// so it is exactly as durable as the blocks it describes, it travels
// with a remote archive mount, and appending the same entry twice
// dedups into one record. New rebuilds the in-memory per-object index
// from the same recovery scan that rebuilds the score maps, and
// Refresh re-runs that scan so a live process sees records a sibling
// appended after it opened — which is what makes demotion idempotent
// across servers sharing an archive (see Archiver for the residual
// same-instant race, which duplicates a record harmlessly).

// ErrUnknownSnapshot reports a snapshot lookup that matched nothing.
var ErrUnknownSnapshot = errors.New("archive: unknown snapshot")

// Entry is one snapshot-log record.
type Entry struct {
	// Object is the file-table object the snapshot belongs to.
	Object uint32
	// Seq is the per-file snapshot sequence, 1-based and ascending in
	// commit order. It is the "commit N" a client opens with VersionAt.
	Seq uint64
	// Root is the archive block holding the canonical version page.
	Root block.Num
	// Score is the snapshot score: the Merkle hash covering the entire
	// archived page tree, recomputable by VerifySnapshot.
	Score Score
}

// entryWireSize is the fixed encoding: object(4) seq(8) root(4) score(32).
const entryWireSize = 4 + 8 + 4 + 32

// encodeEntry renders the entry's canonical record payload.
func encodeEntry(e Entry) []byte {
	out := make([]byte, entryWireSize)
	binary.BigEndian.PutUint32(out[0:4], e.Object)
	binary.BigEndian.PutUint64(out[4:12], e.Seq)
	binary.BigEndian.PutUint32(out[12:16], uint32(e.Root))
	copy(out[16:], e.Score[:])
	return out
}

// decodeEntry parses a KindSnap payload (stored zero-padded to the
// facade block size, so only the record prefix is read).
func decodeEntry(payload []byte) (Entry, error) {
	if len(payload) < entryWireSize {
		return Entry{}, fmt.Errorf("archive: snapshot record is %d bytes, want %d", len(payload), entryWireSize)
	}
	var e Entry
	e.Object = binary.BigEndian.Uint32(payload[0:4])
	e.Seq = binary.BigEndian.Uint64(payload[4:12])
	e.Root = block.Num(binary.BigEndian.Uint32(payload[12:16]))
	copy(e.Score[:], payload[16:])
	return e, nil
}

// insertEntryLocked adds e to the per-object index, keeping ascending
// Seq order and dropping exact duplicates. Caller holds s.mu.
func (s *Store) insertEntryLocked(e Entry) {
	es := s.snaps[e.Object]
	i := sort.Search(len(es), func(i int) bool { return es[i].Seq >= e.Seq })
	if i < len(es) && es[i].Seq == e.Seq {
		return
	}
	es = append(es, Entry{})
	copy(es[i+1:], es[i:])
	es[i] = e
	s.snaps[e.Object] = es
}

// AppendSnapshot records one snapshot entry (idempotent: an identical
// entry dedups onto the record already stored).
func (s *Store) AppendSnapshot(account block.Account, e Entry) error {
	if _, _, err := s.Put(account, KindSnap, encodeEntry(e)); err != nil {
		return fmt.Errorf("archive: append snapshot: %w", err)
	}
	s.mu.Lock()
	s.insertEntryLocked(e)
	s.mu.Unlock()
	return nil
}

// Snapshots lists the snapshot-log entries of one file object in
// ascending Seq order.
func (s *Store) Snapshots(object uint32) []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Entry(nil), s.snaps[object]...)
}

// Snapshot returns the entry with the given sequence.
func (s *Store) Snapshot(object uint32, seq uint64) (Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	es := s.snaps[object]
	i := sort.Search(len(es), func(i int) bool { return es[i].Seq >= seq })
	if i < len(es) && es[i].Seq == seq {
		return es[i], true
	}
	return Entry{}, false
}

// SnapshotByScore returns the entry of one object whose snapshot score
// matches — the archiver's idempotency check: re-demoting a version
// reproduces the same score, so the existing entry answers.
func (s *Store) SnapshotByScore(object uint32, score Score) (Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, e := range s.snaps[object] {
		if e.Score == score {
			return e, true
		}
	}
	return Entry{}, false
}

// LastSeq returns the highest snapshot sequence recorded for object, 0
// when none is.
func (s *Store) LastSeq(object uint32) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	es := s.snaps[object]
	if len(es) == 0 {
		return 0
	}
	return es[len(es)-1].Seq
}
