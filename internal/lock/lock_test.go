package lock

import (
	"errors"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/capability"
	"repro/internal/disk"
	"repro/internal/page"
	"repro/internal/version"
)

const acct block.Account = 1

type fixture struct {
	st    *version.Store
	alive map[capability.Port]bool
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	d := disk.MustNew(disk.Geometry{Blocks: 4096, BlockSize: 1024})
	return &fixture{
		st:    version.NewStore(block.NewServer(d), acct),
		alive: make(map[capability.Port]bool),
	}
}

func (f *fixture) manager(port capability.Port) *Manager {
	m := NewManager(f.st, port, func(h capability.Port) bool { return f.alive[h] })
	m.Poll = 50 * time.Microsecond
	m.Patience = 100 * time.Millisecond
	f.alive[port] = true
	return m
}

// versionPage allocates a bare version page and returns its block.
func (f *fixture) versionPage(t *testing.T, mut func(*page.Page)) block.Num {
	t.Helper()
	vp := &page.Page{IsVersion: true, RootFlags: page.FlagC}
	if mut != nil {
		mut(vp)
	}
	blk, err := f.st.AllocPage(vp)
	if err != nil {
		t.Fatal(err)
	}
	return blk
}

func TestTryAcquireTopSuper(t *testing.T) {
	f := newFixture(t)
	m := f.manager(capability.NewPort())
	blk := f.versionPage(t, nil)

	h, err := m.TryAcquireTop(blk, true)
	if err != nil {
		t.Fatal(err)
	}
	if h.blocked() {
		t.Fatalf("unlocked page blocked: %+v", h)
	}
	top, inner, err := m.Locks(blk)
	if err != nil {
		t.Fatal(err)
	}
	if top != m.Port || !inner.IsNil() {
		t.Fatalf("locks = %v/%v", top, inner)
	}

	// Re-acquiring one's own lock is fine (idempotent).
	if h, err = m.TryAcquireTop(blk, true); err != nil || h.blocked() {
		t.Fatalf("re-acquire blocked: %+v %v", h, err)
	}

	// A second server is blocked.
	m2 := f.manager(capability.NewPort())
	h, err = m2.TryAcquireTop(blk, true)
	if err != nil {
		t.Fatal(err)
	}
	if h.Top != m.Port {
		t.Fatalf("blocked holder = %+v, want %v", h, m.Port)
	}
}

func TestTryAcquireTopSmallIgnoresForeignTop(t *testing.T) {
	f := newFixture(t)
	m1 := f.manager(capability.NewPort())
	m2 := f.manager(capability.NewPort())
	blk := f.versionPage(t, nil)

	if _, err := m1.TryAcquireTop(blk, false); err != nil {
		t.Fatal(err)
	}
	// Small-file rule: only the inner lock is tested; the top lock is a
	// hint and gets overwritten.
	h, err := m2.TryAcquireTop(blk, false)
	if err != nil {
		t.Fatal(err)
	}
	if h.blocked() {
		t.Fatalf("small-file acquire blocked by top hint: %+v", h)
	}
	top, _, _ := m2.Locks(blk)
	if top != m2.Port {
		t.Fatalf("top = %v, want %v", top, m2.Port)
	}
}

func TestTryAcquireTopBlockedByInner(t *testing.T) {
	f := newFixture(t)
	other := capability.NewPort()
	f.alive[other] = true
	blk := f.versionPage(t, func(vp *page.Page) { vp.InnerLock = other })
	m := f.manager(capability.NewPort())

	for _, super := range []bool{true, false} {
		h, err := m.TryAcquireTop(blk, super)
		if err != nil {
			t.Fatal(err)
		}
		if h.Inner != other {
			t.Fatalf("super=%v: inner holder = %+v, want %v", super, h, other)
		}
	}
}

func TestAcquireTopWaitsForRelease(t *testing.T) {
	f := newFixture(t)
	m1 := f.manager(capability.NewPort())
	m2 := f.manager(capability.NewPort())
	blk := f.versionPage(t, nil)
	if _, err := m1.TryAcquireTop(blk, true); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m2.AcquireTop(blk, true) }()
	time.Sleep(2 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("acquire did not wait: %v", err)
	default:
	}
	if err := m1.Clear(blk, m1.Port); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	top, _, _ := m2.Locks(blk)
	if top != m2.Port {
		t.Fatalf("top = %v after waited acquire", top)
	}
}

func TestAcquireTopTimesOutOnLiveHolder(t *testing.T) {
	f := newFixture(t)
	m1 := f.manager(capability.NewPort())
	m2 := f.manager(capability.NewPort())
	m2.Patience = 5 * time.Millisecond
	blk := f.versionPage(t, nil)
	if _, err := m1.TryAcquireTop(blk, true); err != nil {
		t.Fatal(err)
	}
	if err := m2.AcquireTop(blk, true); !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("err = %v, want ErrLockTimeout", err)
	}
}

func TestAcquireTopRecoversFromDeadHolderBeforeCommit(t *testing.T) {
	f := newFixture(t)
	dead := capability.NewPort() // never marked alive
	blk := f.versionPage(t, func(vp *page.Page) { vp.TopLock = dead })
	m := f.manager(capability.NewPort())

	// The holder is dead and the commit reference is off: §5.3 says the
	// lock can be cleared without further ado.
	if err := m.AcquireTop(blk, true); err != nil {
		t.Fatal(err)
	}
	top, _, _ := m.Locks(blk)
	if top != m.Port {
		t.Fatalf("top = %v, want new holder", top)
	}
}

// buildSuperCommitScene models a server that crashed after setting the
// super-file's commit reference but before committing the sub-files:
//
//	P  (old current super version; top lock = dead; CommitRef -> P')
//	P' (new super version; tree holds Q', a new version of sub-file Q)
//	Q  (sub-file current version; inner lock = dead)
//	Q' (new sub version; BaseRef -> Q; commit ref not yet set)
func buildSuperCommitScene(t *testing.T, f *fixture, dead capability.Port) (p, pNew, q, qNew block.Num) {
	t.Helper()
	q = f.versionPage(t, func(vp *page.Page) {
		vp.InnerLock = dead
		vp.Data = []byte("sub old")
	})
	p = f.versionPage(t, func(vp *page.Page) {
		vp.TopLock = dead
		vp.Refs = []page.Ref{{Block: q}}
	})
	qNew = f.versionPage(t, func(vp *page.Page) {
		vp.BaseRef = q
		vp.InnerLock = dead
		vp.Data = []byte("sub new")
	})
	pNew = f.versionPage(t, func(vp *page.Page) {
		vp.BaseRef = p
		vp.TopLock = dead
		vp.Refs = []page.Ref{{Block: qNew, Flags: page.Flags(0).Set(page.FlagW)}}
	})
	// P crashed mid-commit: its commit reference is already set.
	vp, err := f.st.ReadPage(p)
	if err != nil {
		t.Fatal(err)
	}
	vp.CommitRef = pNew
	if err := f.st.WritePage(p, vp); err != nil {
		t.Fatal(err)
	}
	// Q' version pages carry parent references for ascent.
	for _, b := range []block.Num{q, qNew} {
		vp, err := f.st.ReadPage(b)
		if err != nil {
			t.Fatal(err)
		}
		vp.ParentRef = p
		if err := f.st.WritePage(b, vp); err != nil {
			t.Fatal(err)
		}
	}
	return p, pNew, q, qNew
}

func TestRecoverFinishesCrashedSuperCommit(t *testing.T) {
	f := newFixture(t)
	dead := capability.NewPort()
	p, pNew, q, qNew := buildSuperCommitScene(t, f, dead)
	m := f.manager(capability.NewPort())

	// A waiter on P's top lock finds the holder dead and the commit
	// reference set: it finishes the crashed server's work.
	if err := m.AcquireTop(p, true); err != nil {
		t.Fatal(err)
	}

	// The sub-file committed: Q.CommitRef -> Q'.
	qvp, err := f.st.ReadPage(q)
	if err != nil {
		t.Fatal(err)
	}
	if qvp.CommitRef != qNew {
		t.Fatalf("sub commit ref = %d, want %d", qvp.CommitRef, qNew)
	}
	// All the dead holder's locks are gone.
	for _, b := range []block.Num{q, qNew, pNew} {
		top, inner, err := m.Locks(b)
		if err != nil {
			t.Fatal(err)
		}
		if top == dead || inner == dead {
			t.Fatalf("block %d still holds dead locks %v/%v", b, top, inner)
		}
	}
}

func TestRecoverClearsLocksWhenNoCommit(t *testing.T) {
	f := newFixture(t)
	dead := capability.NewPort()
	// Super version P with top lock, sub Q with inner lock, but no
	// commit reference: the update died before committing.
	q := f.versionPage(t, func(vp *page.Page) { vp.InnerLock = dead })
	p := f.versionPage(t, func(vp *page.Page) {
		vp.TopLock = dead
		vp.Refs = []page.Ref{{Block: q}}
	})
	m := f.manager(capability.NewPort())
	if err := m.RecoverCrashed(p, dead); err != nil {
		t.Fatal(err)
	}
	top, _, _ := m.Locks(p)
	_, inner, _ := m.Locks(q)
	if !top.IsNil() || !inner.IsNil() {
		t.Fatalf("locks not cleared: top=%v inner=%v", top, inner)
	}
}

func TestCommitSubFilesIdempotent(t *testing.T) {
	f := newFixture(t)
	dead := capability.NewPort()
	_, pNew, q, qNew := buildSuperCommitScene(t, f, dead)
	m := f.manager(capability.NewPort())

	if err := m.CommitSubFiles(pNew, dead); err != nil {
		t.Fatal(err)
	}
	// Re-running (e.g. a second waiter racing the first) must succeed.
	if err := m.CommitSubFiles(pNew, dead); err != nil {
		t.Fatalf("second run: %v", err)
	}
	qvp, _ := f.st.ReadPage(q)
	if qvp.CommitRef != qNew {
		t.Fatalf("sub commit ref = %d", qvp.CommitRef)
	}
}

func TestAcquireInnerWaitsAndRecovers(t *testing.T) {
	f := newFixture(t)
	dead := capability.NewPort()
	// Sub-file version page with a stale inner lock from a dead server;
	// its parent (system tree root) is unlocked, so the inner lock can
	// be ignored per §5.3.
	p := f.versionPage(t, nil)
	q := f.versionPage(t, func(vp *page.Page) {
		vp.InnerLock = dead
		vp.ParentRef = p
	})
	// Fix up: parent's tree references q.
	pvp, _ := f.st.ReadPage(p)
	pvp.Refs = []page.Ref{{Block: q}}
	if err := f.st.WritePage(p, pvp); err != nil {
		t.Fatal(err)
	}

	m := f.manager(capability.NewPort())
	if err := m.AcquireInner(q); err != nil {
		t.Fatal(err)
	}
	_, inner, _ := m.Locks(q)
	if inner != m.Port {
		t.Fatalf("inner = %v, want %v", inner, m.Port)
	}
}

func TestAcquireInnerBlockedByLiveTop(t *testing.T) {
	f := newFixture(t)
	m1 := f.manager(capability.NewPort())
	m2 := f.manager(capability.NewPort())
	m2.Patience = 5 * time.Millisecond
	blk := f.versionPage(t, nil)
	if _, err := m1.TryAcquireTop(blk, true); err != nil {
		t.Fatal(err)
	}
	if err := m2.AcquireInner(blk); !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("err = %v, want ErrLockTimeout", err)
	}
}

func TestClearOnlyRemovesNamedHolder(t *testing.T) {
	f := newFixture(t)
	m1 := f.manager(capability.NewPort())
	m2 := f.manager(capability.NewPort())
	blk := f.versionPage(t, nil)
	if _, err := m1.TryAcquireTop(blk, true); err != nil {
		t.Fatal(err)
	}
	// Clearing a different holder is a no-op.
	if err := m2.Clear(blk, m2.Port); err != nil {
		t.Fatal(err)
	}
	top, _, _ := m1.Locks(blk)
	if top != m1.Port {
		t.Fatalf("top = %v, cleared by wrong holder", top)
	}
}

func TestLocksRejectsNonVersionPage(t *testing.T) {
	f := newFixture(t)
	m := f.manager(capability.NewPort())
	blk, err := f.st.AllocPage(&page.Page{Data: []byte("plain")})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Locks(blk); err == nil {
		t.Fatal("Locks accepted a plain page")
	}
	if _, err := m.TryAcquireTop(blk, true); err == nil {
		t.Fatal("TryAcquireTop accepted a plain page")
	}
}

func TestConcurrentTopAcquisitionExactlyOneWins(t *testing.T) {
	f := newFixture(t)
	blk := f.versionPage(t, nil)
	const n = 8
	managers := make([]*Manager, n)
	for i := range managers {
		managers[i] = f.manager(capability.NewPort())
	}
	wins := make(chan int, n)
	for i, m := range managers {
		go func(i int, m *Manager) {
			h, err := m.TryAcquireTop(blk, true)
			if err == nil && !h.blocked() {
				wins <- i
			} else {
				wins <- -1
			}
		}(i, m)
	}
	won := 0
	for i := 0; i < n; i++ {
		if <-wins >= 0 {
			won++
		}
	}
	if won != 1 {
		t.Fatalf("%d managers acquired the top lock, want exactly 1", won)
	}
}
