package rpc

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/capability"
)

// echoHandler replies OK, echoing Args[2] and the payload, so tests can
// detect cross-wired replies.
func echoHandler(req *Message) *Message {
	r := req.Reply(StatusOK)
	r.Args[2] = req.Args[2]
	r.Data = append([]byte(nil), req.Data...)
	return r
}

func newEchoServer(t *testing.T, port capability.Port) (*TCPServer, *Resolver) {
	t.Helper()
	srv, err := NewTCPServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	srv.Register(port, echoHandler)
	res := NewResolver()
	res.Set(port, srv.Addr())
	return srv, res
}

func TestTCPDeadPortIsTyped(t *testing.T) {
	// A live server answering for an unregistered port must surface
	// ErrDeadPort through a dedicated status, not by sniffing the
	// diagnostic text.
	port := capability.NewPort().Public()
	_, res := newEchoServer(t, port)
	cli := NewTCPClient(res)
	defer cli.Close()

	ghost := capability.NewPort().Public()
	res.Set(ghost, res.mustLookup(t, port))
	_, err := cli.Transact(ghost, &Message{Command: 9})
	if !errors.Is(err, ErrDeadPort) {
		t.Fatalf("unregistered port err = %v, want ErrDeadPort", err)
	}
	// A handler whose own diagnostic happens to start with the old
	// sniffed prefix must NOT be mistaken for a dead port.
	srv2, err := NewTCPServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	tricky := capability.NewPort().Public()
	srv2.Register(tricky, func(req *Message) *Message {
		return req.Errorf(StatusNotFound, "dead port impersonation attempt")
	})
	res.Set(tricky, srv2.Addr())
	resp, err := cli.Transact(tricky, &Message{Command: 9})
	if err != nil {
		t.Fatalf("transact: %v", err)
	}
	if resp.Status != StatusNotFound {
		t.Fatalf("status = %v, want StatusNotFound passthrough", resp.Status)
	}
}

// mustLookup is a tiny helper keeping the test terse.
func (r *Resolver) mustLookup(t *testing.T, port capability.Port) string {
	t.Helper()
	addr, ok := r.Lookup(port)
	if !ok {
		t.Fatalf("port %v unresolved", port)
	}
	return addr
}

func TestTCPClientConcurrentOverOneConnection(t *testing.T) {
	// Many goroutines share one pooled connection; every reply must
	// reach the goroutine that sent its request.
	port := capability.NewPort().Public()
	_, res := newEchoServer(t, port)
	cli := NewTCPClient(res)
	defer cli.Close()

	const goroutines, each = 8, 64
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tag := uint64(g)<<32 | uint64(i)
				req := &Message{Command: 7, Data: []byte(fmt.Sprintf("g%d-i%d", g, i))}
				req.Args[2] = tag
				resp, err := cli.Transact(port, req)
				if err != nil {
					errs <- err
					return
				}
				if resp.Args[2] != tag || string(resp.Data) != fmt.Sprintf("g%d-i%d", g, i) {
					errs <- fmt.Errorf("goroutine %d got foreign reply %d %q", g, resp.Args[2], resp.Data)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

func TestTCPRetryAfterServerRestart(t *testing.T) {
	// A restarted server invalidates the pooled connection; in-flight
	// callers must redial and succeed without surfacing an error.
	port := capability.NewPort().Public()
	srv1, res := newEchoServer(t, port)
	cli := NewTCPClient(res)
	defer cli.Close()
	if _, err := cli.Transact(port, &Message{Command: 1}); err != nil {
		t.Fatalf("warm-up: %v", err)
	}

	srv1.Close()
	srv2, err := NewTCPServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	srv2.Register(port, echoHandler)
	res.Set(port, srv2.Addr())

	req := &Message{Command: 2, Data: []byte("after restart")}
	resp, err := cli.Transact(port, req)
	if err != nil {
		t.Fatalf("transact after restart: %v", err)
	}
	if string(resp.Data) != "after restart" {
		t.Fatalf("reply %q", resp.Data)
	}
}

func TestTCPRetryRidesOutTransientFailures(t *testing.T) {
	// A proxy that kills the first connections simulates a flaky path /
	// a server mid-restart: the retry policy should absorb it.
	port := capability.NewPort().Public()
	srv, _ := newEchoServer(t, port)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var dials atomic.Int64
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if dials.Add(1) <= 2 {
				conn.Close() // transient failure
				continue
			}
			backend, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				conn.Close()
				continue
			}
			go func() { io.Copy(backend, conn); backend.Close() }()
			go func() { io.Copy(conn, backend); conn.Close() }()
		}
	}()

	res := NewResolver()
	res.Set(port, ln.Addr().String())
	cli := NewTCPClient(res)
	defer cli.Close()
	cli.SetRetryPolicy(RetryPolicy{Attempts: 5, Backoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond})

	resp, err := cli.Transact(port, &Message{Command: 3, Data: []byte("flaky")})
	if err != nil {
		t.Fatalf("transact through flaky path: %v", err)
	}
	if string(resp.Data) != "flaky" {
		t.Fatalf("reply %q", resp.Data)
	}
	if got := dials.Load(); got < 3 {
		t.Fatalf("proxy saw %d dials, want ≥ 3 (retries exercised)", got)
	}
}

func TestTCPRetryExhaustionMapsToDeadPort(t *testing.T) {
	// Nothing listening at all: after Attempts tries the failure maps
	// to ErrDeadPort, the signal lock recovery keys on.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	port := capability.NewPort().Public()
	res := NewResolver()
	res.Set(port, addr)
	cli := NewTCPClient(res)
	defer cli.Close()
	cli.SetRetryPolicy(RetryPolicy{Attempts: 2, Backoff: time.Millisecond, MaxBackoff: time.Millisecond})
	if _, err := cli.Transact(port, &Message{Command: 4}); !errors.Is(err, ErrDeadPort) {
		t.Fatalf("err = %v, want ErrDeadPort", err)
	}
}
