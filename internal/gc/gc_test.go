package gc

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/block"
	"repro/internal/disk"
	"repro/internal/file"
	"repro/internal/occ"
	"repro/internal/page"
	"repro/internal/server"
	"repro/internal/version"
)

// fixture builds a full service (server + table) so GC runs against real
// commit chains.
type fixture struct {
	srv *server.Server
	bs  *block.Server
	col *Collector
}

func newFixture(t *testing.T, retain int) *fixture {
	t.Helper()
	d := disk.MustNew(disk.Geometry{Blocks: 1 << 14, BlockSize: 1024})
	bs := block.NewServer(d)
	sh := server.NewShared(bs, 1)
	srv := server.New(sh, nil)
	col := New(srv.Store(), sh.Table, retain, nil)
	return &fixture{srv: srv, bs: bs, col: col}
}

// collectTwice runs two cycles so two-cycle condemnation actually frees,
// returning the aggregated report.
func (f *fixture) collectTwice(t *testing.T) Report {
	t.Helper()
	r1, err := f.col.Collect()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := f.col.Collect()
	if err != nil {
		t.Fatal(err)
	}
	r2.Freed += r1.Freed
	r2.Reshared += r1.Reshared
	r2.Retired += r1.Retired
	r2.Demoted += r1.Demoted
	r2.DemoteErrors += r1.DemoteErrors
	if r2.DemoteErr == nil {
		r2.DemoteErr = r1.DemoteErr
	}
	return r2
}

// withArchive attaches an archive tier to the fixture's collector:
// retirement becomes demote-instead-of-delete.
func (f *fixture) withArchive(t *testing.T) (*archive.Store, *archive.Archiver) {
	t.Helper()
	backing := block.NewServer(disk.MustNew(disk.Geometry{
		Blocks: 1 << 14, BlockSize: 1024 + archive.FrameOverhead,
	}))
	st, err := archive.New(backing, 1)
	if err != nil {
		t.Fatal(err)
	}
	arch := &archive.Archiver{Front: f.col.St, Store: st, Acct: 1}
	f.col.Demote = func(object uint32, root block.Num) error {
		_, _, err := arch.Demote(object, root)
		return err
	}
	return st, arch
}

func TestAbortedVersionReclaimed(t *testing.T) {
	f := newFixture(t, 4)
	fcap, _ := f.srv.CreateFile([]byte("keep"))
	inUse := f.bs.InUse()

	v, _ := f.srv.CreateVersion(fcap, server.CreateVersionOpts{})
	if err := f.srv.WritePage(v, page.RootPath, []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.Abort(v); err != nil {
		t.Fatal(err)
	}
	if f.bs.InUse() <= inUse {
		t.Fatal("abort should leave orphan blocks for the collector")
	}
	f.collectTwice(t)
	if got := f.bs.InUse(); got != inUse {
		t.Fatalf("after GC %d blocks in use, want %d", got, inUse)
	}
	// The file still reads fine.
	v2, _ := f.srv.CreateVersion(fcap, server.CreateVersionOpts{})
	data, _, err := f.srv.ReadPage(v2, page.RootPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "keep" {
		t.Fatalf("file damaged by GC: %q", data)
	}
}

func TestRetentionDropsOldVersions(t *testing.T) {
	f := newFixture(t, 2)
	fcap, _ := f.srv.CreateFile([]byte("g0"))
	for i := 1; i <= 5; i++ {
		v, _ := f.srv.CreateVersion(fcap, server.CreateVersionOpts{})
		f.srv.WritePage(v, page.RootPath, []byte(fmt.Sprintf("g%d", i)))
		if err := f.srv.Commit(v); err != nil {
			t.Fatal(err)
		}
	}
	histBefore, _ := f.srv.History(fcap)
	if len(histBefore) != 6 {
		t.Fatalf("history %d", len(histBefore))
	}
	rep := f.collectTwice(t)
	if rep.Freed == 0 {
		t.Fatal("retention freed nothing")
	}
	histAfter, err := f.srv.History(fcap)
	if err != nil {
		t.Fatal(err)
	}
	if len(histAfter) != 2 {
		t.Fatalf("history after GC = %d, want 2", len(histAfter))
	}
	// Current state unharmed.
	v, _ := f.srv.CreateVersion(fcap, server.CreateVersionOpts{})
	data, _, err := f.srv.ReadPage(v, page.RootPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "g5" {
		t.Fatalf("current = %q", data)
	}
}

func TestUncommittedVersionsPinned(t *testing.T) {
	f := newFixture(t, 1)
	fcap, _ := f.srv.CreateFile([]byte("base"))
	v, _ := f.srv.CreateVersion(fcap, server.CreateVersionOpts{})
	if err := f.srv.WritePage(v, page.RootPath, []byte("in-flight")); err != nil {
		t.Fatal(err)
	}
	// Wire the live-version pin to the open version's root.
	root, err := f.srv.VersionRoot(v)
	if err != nil {
		t.Fatal(err)
	}
	f.col.Live = func() []block.Num { return []block.Num{root} }

	f.collectTwice(t)
	// The open version must still be usable and committable.
	data, _, err := f.srv.ReadPage(v, page.RootPath)
	if err != nil {
		t.Fatalf("GC ate an open version: %v", err)
	}
	if string(data) != "in-flight" {
		t.Fatalf("open version reads %q", data)
	}
	if err := f.srv.Commit(v); err != nil {
		t.Fatal(err)
	}
}

func TestReshareReclaimsReadShadows(t *testing.T) {
	f := newFixture(t, 8)
	fcap, _ := f.srv.CreateFile(nil)
	setup, _ := f.srv.CreateVersion(fcap, server.CreateVersionOpts{})
	for i := 0; i < 4; i++ {
		f.srv.InsertPage(setup, page.RootPath, i, []byte(fmt.Sprintf("leaf%d", i)))
	}
	if err := f.srv.Commit(setup); err != nil {
		t.Fatal(err)
	}

	// An update that READS three pages and writes one: the three read
	// copies are pure shadowing and reshareable after commit.
	v, _ := f.srv.CreateVersion(fcap, server.CreateVersionOpts{})
	for i := 0; i < 3; i++ {
		if _, _, err := f.srv.ReadPage(v, page.Path{i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.srv.WritePage(v, page.Path{3}, []byte("written")); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.Commit(v); err != nil {
		t.Fatal(err)
	}
	used := f.bs.InUse()
	rep := f.collectTwice(t)
	if rep.Reshared < 3 {
		t.Fatalf("reshared %d pages, want >= 3", rep.Reshared)
	}
	f.collectTwice(t) // free the orphaned copies
	if f.bs.InUse() >= used {
		t.Fatalf("reshare freed nothing: %d -> %d", used, f.bs.InUse())
	}
	// Content intact after resharing.
	v2, _ := f.srv.CreateVersion(fcap, server.CreateVersionOpts{})
	for i := 0; i < 4; i++ {
		want := fmt.Sprintf("leaf%d", i)
		if i == 3 {
			want = "written"
		}
		data, _, err := f.srv.ReadPage(v2, page.Path{i})
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != want {
			t.Fatalf("page %d = %q, want %q", i, data, want)
		}
	}
}

func TestTwoCycleGracePeriod(t *testing.T) {
	f := newFixture(t, 4)
	fcap, _ := f.srv.CreateFile([]byte("x"))
	v, _ := f.srv.CreateVersion(fcap, server.CreateVersionOpts{})
	f.srv.WritePage(v, page.RootPath, []byte("y"))
	f.srv.Abort(v)

	used := f.bs.InUse()
	rep1, err := f.col.Collect()
	if err != nil {
		t.Fatal(err)
	}
	// First cycle condemns but must not free.
	if rep1.Freed != 0 {
		t.Fatalf("first cycle freed %d blocks", rep1.Freed)
	}
	if rep1.Condemned == 0 {
		t.Fatal("first cycle condemned nothing")
	}
	if f.bs.InUse() != used {
		t.Fatal("blocks freed before grace period")
	}
	rep2, err := f.col.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Freed == 0 {
		t.Fatal("second cycle freed nothing")
	}
}

func TestCollectPreservesSuperFiles(t *testing.T) {
	f := newFixture(t, 2)
	superCap, _ := f.srv.CreateFile([]byte("super"))
	v, _ := f.srv.CreateVersion(superCap, server.CreateVersionOpts{})
	subCap, err := f.srv.CreateSubFile(v, page.RootPath, 0, []byte("sub"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.srv.Commit(v); err != nil {
		t.Fatal(err)
	}
	// Update the sub-file twice so it has its own chain.
	for i := 0; i < 2; i++ {
		sv, err := f.srv.CreateVersion(subCap, server.CreateVersionOpts{})
		if err != nil {
			t.Fatal(err)
		}
		f.srv.WritePage(sv, page.RootPath, []byte(fmt.Sprintf("sub%d", i)))
		if err := f.srv.Commit(sv); err != nil {
			t.Fatal(err)
		}
	}
	f.collectTwice(t)
	f.collectTwice(t)

	// Both files intact.
	sv, err := f.srv.CreateVersion(subCap, server.CreateVersionOpts{})
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := f.srv.ReadPage(sv, page.RootPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "sub1" {
		t.Fatalf("sub after GC = %q", data)
	}
	// Close the small update: its top-lock hint would (correctly) make
	// the super-file update below wait for it.
	if err := f.srv.Abort(sv); err != nil {
		t.Fatal(err)
	}
	v2, err := f.srv.CreateVersion(superCap, server.CreateVersionOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.srv.ReadPage(v2, page.Path{0}); err != nil {
		t.Fatalf("super read through boundary after GC: %v", err)
	}
}

func TestRunBackground(t *testing.T) {
	f := newFixture(t, 1)
	fcap, _ := f.srv.CreateFile([]byte("live"))
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		f.col.Run(time.Millisecond, stop, nil)
		close(done)
	}()
	// Work while the collector runs in parallel.
	for i := 0; i < 20; i++ {
		v, err := f.srv.CreateVersion(fcap, server.CreateVersionOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.srv.WritePage(v, page.RootPath, []byte(fmt.Sprintf("gen%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := f.srv.Commit(v); err != nil {
			t.Fatal(err)
		}
		time.Sleep(200 * time.Microsecond)
	}
	close(stop)
	<-done
	v, _ := f.srv.CreateVersion(fcap, server.CreateVersionOpts{})
	data, _, err := f.srv.ReadPage(v, page.RootPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "gen19" {
		t.Fatalf("current after concurrent GC = %q", data)
	}
}

// TestDemoteInsteadOfDelete commits five times over a retention of two:
// the four retired versions must land in the archive as snapshots 1..4
// — byte-identical and verifiable — before the sweep frees their
// front-tier blocks.
func TestDemoteInsteadOfDelete(t *testing.T) {
	f := newFixture(t, 2)
	st, _ := f.withArchive(t)
	fcap, _ := f.srv.CreateFile([]byte("g0"))
	for i := 1; i <= 5; i++ {
		v, _ := f.srv.CreateVersion(fcap, server.CreateVersionOpts{})
		f.srv.WritePage(v, page.RootPath, []byte(fmt.Sprintf("g%d", i)))
		if err := f.srv.Commit(v); err != nil {
			t.Fatal(err)
		}
	}
	rep := f.collectTwice(t)
	if rep.Demoted != 4 || rep.Retired < 4 {
		t.Fatalf("demoted %d retired %d, want 4 demoted", rep.Demoted, rep.Retired)
	}
	if rep.Freed == 0 {
		t.Fatal("demotion must not keep the sweep from freeing")
	}
	hist, err := f.srv.History(fcap)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 {
		t.Fatalf("front history = %d, want 2", len(hist))
	}
	snaps := st.Snapshots(fcap.Object)
	if len(snaps) != 4 {
		t.Fatalf("snapshots = %d, want 4", len(snaps))
	}
	for i, e := range snaps {
		if e.Seq != uint64(i+1) {
			t.Fatalf("snapshot %d has seq %d", i, e.Seq)
		}
		if err := archive.VerifySnapshot(st, 1, e); err != nil {
			t.Fatalf("verify snapshot %d: %v", e.Seq, err)
		}
		tr := &version.Tree{St: version.NewStore(st, 1), Root: e.Root}
		pg, err := tr.PeekPage(page.RootPath)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("g%d", i); string(pg.Data) != want {
			t.Fatalf("snapshot %d = %q, want %q", e.Seq, pg.Data, want)
		}
	}
}

// TestDemoteIdempotentAcrossSweepers simulates the multi-server race
// the demote design defuses: a sibling server archives the retired
// roots first; this server's own demote pass must be a pure dedup no-op
// — no error, no duplicate snapshots — instead of the old double-free
// hazard.
func TestDemoteIdempotentAcrossSweepers(t *testing.T) {
	f := newFixture(t, 1)
	st, arch := f.withArchive(t)
	fcap, _ := f.srv.CreateFile([]byte("g0"))
	for i := 1; i <= 3; i++ {
		v, _ := f.srv.CreateVersion(fcap, server.CreateVersionOpts{})
		f.srv.WritePage(v, page.RootPath, []byte(fmt.Sprintf("g%d", i)))
		if err := f.srv.Commit(v); err != nil {
			t.Fatal(err)
		}
	}
	// The sibling demotes the whole retired prefix first.
	e, err := f.col.Table.Get(fcap.Object)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := occ.History(f.col.St, e.Entry)
	if err != nil {
		t.Fatal(err)
	}
	for _, root := range chain[:len(chain)-1] {
		if _, _, err := arch.Demote(fcap.Object, root); err != nil {
			t.Fatal(err)
		}
	}
	rep := f.collectTwice(t)
	if rep.Demoted != 3 {
		t.Fatalf("demoted %d, want 3 (idempotent re-demotes)", rep.Demoted)
	}
	if got := st.Snapshots(fcap.Object); len(got) != 3 {
		t.Fatalf("snapshots = %d, want 3 (no duplicates)", len(got))
	}
	if s := arch.Stats(); s.Skipped != 3 || s.Demotes != 3 {
		t.Fatalf("archiver stats = %+v, want 3 demotes, 3 skips", s)
	}
}

// TestDemoteFailureRetains keeps versions in the front tier when the
// archive refuses them: nothing committed is freed unarchived.
func TestDemoteFailureRetains(t *testing.T) {
	f := newFixture(t, 1)
	st, arch := f.withArchive(t)
	broken := true
	f.col.Demote = func(object uint32, root block.Num) error {
		if broken {
			return fmt.Errorf("archive offline")
		}
		_, _, err := arch.Demote(object, root)
		return err
	}
	fcap, _ := f.srv.CreateFile([]byte("g0"))
	for i := 1; i <= 3; i++ {
		v, _ := f.srv.CreateVersion(fcap, server.CreateVersionOpts{})
		f.srv.WritePage(v, page.RootPath, []byte(fmt.Sprintf("g%d", i)))
		if err := f.srv.Commit(v); err != nil {
			t.Fatal(err)
		}
	}
	rep := f.collectTwice(t)
	if rep.Demoted != 0 || rep.Retired != 0 {
		t.Fatalf("broken archive: demoted %d retired %d, want 0/0", rep.Demoted, rep.Retired)
	}
	// The failure must be visible in the report, not silently swallowed.
	if rep.DemoteErrors == 0 || rep.DemoteErr == nil {
		t.Fatalf("broken archive: DemoteErrors=%d DemoteErr=%v, want the failure surfaced", rep.DemoteErrors, rep.DemoteErr)
	}
	if hist, _ := f.srv.History(fcap); len(hist) != 4 {
		t.Fatalf("history shrank to %d with the archive down", len(hist))
	}
	broken = false
	rep = f.collectTwice(t)
	if rep.Demoted != 3 {
		t.Fatalf("recovered archive: demoted %d, want 3", rep.Demoted)
	}
	if rep.DemoteErrors != 0 || rep.DemoteErr != nil {
		t.Fatalf("recovered archive still reports DemoteErrors=%d DemoteErr=%v", rep.DemoteErrors, rep.DemoteErr)
	}
	if hist, _ := f.srv.History(fcap); len(hist) != 1 {
		t.Fatalf("history = %d after recovery, want 1", len(hist))
	}
	if got := st.Snapshots(fcap.Object); len(got) != 3 {
		t.Fatalf("snapshots = %d, want 3", len(got))
	}
}

// TestLiveVersionBasePinned: a client opens an update on a sibling
// server and stalls while newer commits land; retention retires the
// orphan's base, but the collector must pin it — the base is what lets
// a later crash-recovery Rebuild tell the abandoned orphan from a
// committed survivor (and what the orphan would redo its updates from).
func TestLiveVersionBasePinned(t *testing.T) {
	f := newFixture(t, 1)
	sib := server.New(f.srv.Shared(), nil)
	f.col.Live = func() []block.Num {
		return append(f.srv.LiveVersions(), sib.LiveVersions()...)
	}

	fcap, _ := f.srv.CreateFile([]byte("g0"))
	if _, err := sib.CreateVersion(fcap, server.CreateVersionOpts{}); err != nil {
		t.Fatal(err)
	}
	live := sib.LiveVersions()
	if len(live) != 1 {
		t.Fatalf("live versions = %d, want 1", len(live))
	}
	orphanRoot := live[0]
	opg, err := f.col.St.ReadPage(orphanRoot)
	if err != nil {
		t.Fatal(err)
	}
	base := opg.BaseRef
	if base == block.NilNum {
		t.Fatal("orphan has no base")
	}

	for i := 1; i <= 3; i++ {
		v, _ := f.srv.CreateVersion(fcap, server.CreateVersionOpts{})
		f.srv.WritePage(v, page.RootPath, []byte(fmt.Sprintf("g%d", i)))
		if err := f.srv.Commit(v); err != nil {
			t.Fatal(err)
		}
	}
	rep := f.collectTwice(t)
	if rep.Freed == 0 {
		t.Fatal("retention freed nothing")
	}
	// The orphan's base survived retirement and two sweep cycles.
	bp, err := f.col.St.ReadPage(base)
	if err != nil {
		t.Fatalf("live orphan's base swept: %v", err)
	}
	if bp.CommitRef == block.NilNum {
		t.Fatal("base lost its commit reference")
	}
	// Crash recovery now classifies the orphan correctly: its base is
	// present and points at the committed successor, not at it.
	tb, err := file.Rebuild(f.col.St)
	if err != nil {
		t.Fatal(err)
	}
	e, err := tb.Get(fcap.Object)
	if err != nil {
		t.Fatal(err)
	}
	if e.Entry == orphanRoot {
		t.Fatal("rebuild resurrected the live orphan as the entry")
	}
	chain, err := occ.History(f.col.St, e.Entry)
	if err != nil || len(chain) == 0 {
		t.Fatalf("history from rebuilt entry: %v", err)
	}
	cur, err := f.col.St.ReadPage(chain[len(chain)-1])
	if err != nil {
		t.Fatal(err)
	}
	if string(cur.Data) != "g3" {
		t.Fatalf("rebuilt current content = %q, want g3", cur.Data)
	}
}
