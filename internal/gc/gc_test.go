package gc

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/disk"
	"repro/internal/page"
	"repro/internal/server"
)

// fixture builds a full service (server + table) so GC runs against real
// commit chains.
type fixture struct {
	srv *server.Server
	bs  *block.Server
	col *Collector
}

func newFixture(t *testing.T, retain int) *fixture {
	t.Helper()
	d := disk.MustNew(disk.Geometry{Blocks: 1 << 14, BlockSize: 1024})
	bs := block.NewServer(d)
	sh := server.NewShared(bs, 1)
	srv := server.New(sh, nil)
	col := New(srv.Store(), sh.Table, retain, nil)
	return &fixture{srv: srv, bs: bs, col: col}
}

// collectTwice runs two cycles so two-cycle condemnation actually frees,
// returning the aggregated report.
func (f *fixture) collectTwice(t *testing.T) Report {
	t.Helper()
	r1, err := f.col.Collect()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := f.col.Collect()
	if err != nil {
		t.Fatal(err)
	}
	r2.Freed += r1.Freed
	r2.Reshared += r1.Reshared
	r2.Retired += r1.Retired
	return r2
}

func TestAbortedVersionReclaimed(t *testing.T) {
	f := newFixture(t, 4)
	fcap, _ := f.srv.CreateFile([]byte("keep"))
	inUse := f.bs.InUse()

	v, _ := f.srv.CreateVersion(fcap, server.CreateVersionOpts{})
	if err := f.srv.WritePage(v, page.RootPath, []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.Abort(v); err != nil {
		t.Fatal(err)
	}
	if f.bs.InUse() <= inUse {
		t.Fatal("abort should leave orphan blocks for the collector")
	}
	f.collectTwice(t)
	if got := f.bs.InUse(); got != inUse {
		t.Fatalf("after GC %d blocks in use, want %d", got, inUse)
	}
	// The file still reads fine.
	v2, _ := f.srv.CreateVersion(fcap, server.CreateVersionOpts{})
	data, _, err := f.srv.ReadPage(v2, page.RootPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "keep" {
		t.Fatalf("file damaged by GC: %q", data)
	}
}

func TestRetentionDropsOldVersions(t *testing.T) {
	f := newFixture(t, 2)
	fcap, _ := f.srv.CreateFile([]byte("g0"))
	for i := 1; i <= 5; i++ {
		v, _ := f.srv.CreateVersion(fcap, server.CreateVersionOpts{})
		f.srv.WritePage(v, page.RootPath, []byte(fmt.Sprintf("g%d", i)))
		if err := f.srv.Commit(v); err != nil {
			t.Fatal(err)
		}
	}
	histBefore, _ := f.srv.History(fcap)
	if len(histBefore) != 6 {
		t.Fatalf("history %d", len(histBefore))
	}
	rep := f.collectTwice(t)
	if rep.Freed == 0 {
		t.Fatal("retention freed nothing")
	}
	histAfter, err := f.srv.History(fcap)
	if err != nil {
		t.Fatal(err)
	}
	if len(histAfter) != 2 {
		t.Fatalf("history after GC = %d, want 2", len(histAfter))
	}
	// Current state unharmed.
	v, _ := f.srv.CreateVersion(fcap, server.CreateVersionOpts{})
	data, _, err := f.srv.ReadPage(v, page.RootPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "g5" {
		t.Fatalf("current = %q", data)
	}
}

func TestUncommittedVersionsPinned(t *testing.T) {
	f := newFixture(t, 1)
	fcap, _ := f.srv.CreateFile([]byte("base"))
	v, _ := f.srv.CreateVersion(fcap, server.CreateVersionOpts{})
	if err := f.srv.WritePage(v, page.RootPath, []byte("in-flight")); err != nil {
		t.Fatal(err)
	}
	// Wire the live-version pin to the open version's root.
	root, err := f.srv.VersionRoot(v)
	if err != nil {
		t.Fatal(err)
	}
	f.col.Live = func() []block.Num { return []block.Num{root} }

	f.collectTwice(t)
	// The open version must still be usable and committable.
	data, _, err := f.srv.ReadPage(v, page.RootPath)
	if err != nil {
		t.Fatalf("GC ate an open version: %v", err)
	}
	if string(data) != "in-flight" {
		t.Fatalf("open version reads %q", data)
	}
	if err := f.srv.Commit(v); err != nil {
		t.Fatal(err)
	}
}

func TestReshareReclaimsReadShadows(t *testing.T) {
	f := newFixture(t, 8)
	fcap, _ := f.srv.CreateFile(nil)
	setup, _ := f.srv.CreateVersion(fcap, server.CreateVersionOpts{})
	for i := 0; i < 4; i++ {
		f.srv.InsertPage(setup, page.RootPath, i, []byte(fmt.Sprintf("leaf%d", i)))
	}
	if err := f.srv.Commit(setup); err != nil {
		t.Fatal(err)
	}

	// An update that READS three pages and writes one: the three read
	// copies are pure shadowing and reshareable after commit.
	v, _ := f.srv.CreateVersion(fcap, server.CreateVersionOpts{})
	for i := 0; i < 3; i++ {
		if _, _, err := f.srv.ReadPage(v, page.Path{i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.srv.WritePage(v, page.Path{3}, []byte("written")); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.Commit(v); err != nil {
		t.Fatal(err)
	}
	used := f.bs.InUse()
	rep := f.collectTwice(t)
	if rep.Reshared < 3 {
		t.Fatalf("reshared %d pages, want >= 3", rep.Reshared)
	}
	f.collectTwice(t) // free the orphaned copies
	if f.bs.InUse() >= used {
		t.Fatalf("reshare freed nothing: %d -> %d", used, f.bs.InUse())
	}
	// Content intact after resharing.
	v2, _ := f.srv.CreateVersion(fcap, server.CreateVersionOpts{})
	for i := 0; i < 4; i++ {
		want := fmt.Sprintf("leaf%d", i)
		if i == 3 {
			want = "written"
		}
		data, _, err := f.srv.ReadPage(v2, page.Path{i})
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != want {
			t.Fatalf("page %d = %q, want %q", i, data, want)
		}
	}
}

func TestTwoCycleGracePeriod(t *testing.T) {
	f := newFixture(t, 4)
	fcap, _ := f.srv.CreateFile([]byte("x"))
	v, _ := f.srv.CreateVersion(fcap, server.CreateVersionOpts{})
	f.srv.WritePage(v, page.RootPath, []byte("y"))
	f.srv.Abort(v)

	used := f.bs.InUse()
	rep1, err := f.col.Collect()
	if err != nil {
		t.Fatal(err)
	}
	// First cycle condemns but must not free.
	if rep1.Freed != 0 {
		t.Fatalf("first cycle freed %d blocks", rep1.Freed)
	}
	if rep1.Condemned == 0 {
		t.Fatal("first cycle condemned nothing")
	}
	if f.bs.InUse() != used {
		t.Fatal("blocks freed before grace period")
	}
	rep2, err := f.col.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Freed == 0 {
		t.Fatal("second cycle freed nothing")
	}
}

func TestCollectPreservesSuperFiles(t *testing.T) {
	f := newFixture(t, 2)
	superCap, _ := f.srv.CreateFile([]byte("super"))
	v, _ := f.srv.CreateVersion(superCap, server.CreateVersionOpts{})
	subCap, err := f.srv.CreateSubFile(v, page.RootPath, 0, []byte("sub"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.srv.Commit(v); err != nil {
		t.Fatal(err)
	}
	// Update the sub-file twice so it has its own chain.
	for i := 0; i < 2; i++ {
		sv, err := f.srv.CreateVersion(subCap, server.CreateVersionOpts{})
		if err != nil {
			t.Fatal(err)
		}
		f.srv.WritePage(sv, page.RootPath, []byte(fmt.Sprintf("sub%d", i)))
		if err := f.srv.Commit(sv); err != nil {
			t.Fatal(err)
		}
	}
	f.collectTwice(t)
	f.collectTwice(t)

	// Both files intact.
	sv, err := f.srv.CreateVersion(subCap, server.CreateVersionOpts{})
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := f.srv.ReadPage(sv, page.RootPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "sub1" {
		t.Fatalf("sub after GC = %q", data)
	}
	// Close the small update: its top-lock hint would (correctly) make
	// the super-file update below wait for it.
	if err := f.srv.Abort(sv); err != nil {
		t.Fatal(err)
	}
	v2, err := f.srv.CreateVersion(superCap, server.CreateVersionOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.srv.ReadPage(v2, page.Path{0}); err != nil {
		t.Fatalf("super read through boundary after GC: %v", err)
	}
}

func TestRunBackground(t *testing.T) {
	f := newFixture(t, 1)
	fcap, _ := f.srv.CreateFile([]byte("live"))
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		f.col.Run(time.Millisecond, stop, nil)
		close(done)
	}()
	// Work while the collector runs in parallel.
	for i := 0; i < 20; i++ {
		v, err := f.srv.CreateVersion(fcap, server.CreateVersionOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.srv.WritePage(v, page.RootPath, []byte(fmt.Sprintf("gen%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := f.srv.Commit(v); err != nil {
			t.Fatal(err)
		}
		time.Sleep(200 * time.Microsecond)
	}
	close(stop)
	<-done
	v, _ := f.srv.CreateVersion(fcap, server.CreateVersionOpts{})
	data, _, err := f.srv.ReadPage(v, page.RootPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "gen19" {
		t.Fatalf("current after concurrent GC = %q", data)
	}
}
