package tsfs

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/block"
	"repro/internal/disk"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	d := disk.MustNew(disk.Geometry{Blocks: 1 << 12, BlockSize: 512})
	return New(block.NewServer(d), 1)
}

func TestReadWriteCommit(t *testing.T) {
	s := newStore(t)
	f, err := s.CreateFile(2)
	if err != nil {
		t.Fatal(err)
	}
	txn, _ := s.Begin()
	if err := txn.Write(f, 0, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	got, err := txn.Read(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:2], []byte("v1")) {
		t.Fatalf("own read %q", got[:2])
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	got, _ = s.ReadCommitted(f, 0)
	if !bytes.Equal(got[:2], []byte("v1")) {
		t.Fatalf("committed %q", got[:2])
	}
}

func TestTentativeWritesInvisibleUntilCommit(t *testing.T) {
	s := newStore(t)
	f, _ := s.CreateFile(1)
	t1, _ := s.Begin()
	t1.Write(f, 0, []byte("tentative"))
	t2, _ := s.Begin()
	got, err := t2.Read(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatal("tentative write visible to other transaction")
	}
}

func TestLateWriteAborts(t *testing.T) {
	s := newStore(t)
	f, _ := s.CreateFile(1)
	early, _ := s.Begin() // ts = 1
	late, _ := s.Begin()  // ts = 2
	// The later transaction reads the page: readTS = 2.
	if _, err := late.Read(f, 0); err != nil {
		t.Fatal(err)
	}
	// The earlier transaction's write arrives too late.
	err := early.Write(f, 0, []byte("too late"))
	if !errors.Is(err, ErrLateWrite) {
		t.Fatalf("err = %v, want ErrLateWrite", err)
	}
	if s.Stats().LateWrites != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestLateWriteDetectedAtCommit(t *testing.T) {
	s := newStore(t)
	f, _ := s.CreateFile(1)
	early, _ := s.Begin()
	if err := early.Write(f, 0, []byte("buffered")); err != nil {
		t.Fatal(err)
	}
	// A later transaction reads and commits between the buffer and the
	// publish.
	late, _ := s.Begin()
	if _, err := late.Read(f, 0); err != nil {
		t.Fatal(err)
	}
	if err := late.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := early.Commit(); !errors.Is(err, ErrLateWrite) {
		t.Fatalf("commit err = %v, want ErrLateWrite", err)
	}
}

func TestSnapshotReads(t *testing.T) {
	s := newStore(t)
	f, _ := s.CreateFile(1)
	// Commit two generations.
	for _, v := range []string{"g1", "g2"} {
		txn, _ := s.Begin()
		txn.Write(f, 0, []byte(v))
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// A reader that began before a third write sees g2 even after g3
	// commits (multi-version snapshot at its pseudo-time).
	reader, _ := s.Begin()
	w, _ := s.Begin()
	w.Write(f, 0, []byte("g3"))
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	got, err := reader.Read(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:2], []byte("g2")) {
		t.Fatalf("snapshot read %q, want g2", got[:2])
	}
}

func TestDisjointWritersBothCommit(t *testing.T) {
	s := newStore(t)
	f, _ := s.CreateFile(2)
	t1, _ := s.Begin()
	t2, _ := s.Begin()
	if err := t1.Write(f, 0, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(f, 1, []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	d0, _ := s.ReadCommitted(f, 0)
	d1, _ := s.ReadCommitted(f, 1)
	if !bytes.Equal(d0[:3], []byte("one")) || !bytes.Equal(d1[:3], []byte("two")) {
		t.Fatalf("%q %q", d0[:3], d1[:3])
	}
}

func TestAbortedTxnUnusable(t *testing.T) {
	s := newStore(t)
	f, _ := s.CreateFile(1)
	txn, _ := s.Begin()
	txn.Abort()
	if _, err := txn.Read(f, 0); !errors.Is(err, ErrAborted) {
		t.Fatalf("read after abort: %v", err)
	}
	if err := txn.Commit(); !errors.Is(err, ErrAborted) {
		t.Fatalf("commit after abort: %v", err)
	}
}

func TestPrune(t *testing.T) {
	s := newStore(t)
	f, _ := s.CreateFile(1)
	for i := 0; i < 5; i++ {
		txn, _ := s.Begin()
		txn.Write(f, 0, []byte{byte(i)})
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	s.Prune()
	got, err := s.ReadCommitted(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 4 {
		t.Fatalf("latest after prune = %d", got[0])
	}
}
