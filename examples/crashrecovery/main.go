// Command crashrecovery demonstrates the durable backend: a file
// written through the Amoeba File Service on top of the segment-log
// block store (internal/segstore) survives a process crash.
//
// The demo runs the service twice against the same store directory.
// The first life writes a file and then "crashes" — the cluster is
// abandoned without any shutdown, exactly as a killed process would
// leave it (acknowledged writes are already group-committed to disk,
// so there is nothing to flush). The second life starts from nothing
// but the directory: it reopens the log, which rebuilds the block
// index by scanning the segments, runs the §4 recovery scan to rebuild
// the file table from the version pages it finds, and serves the old
// contents again.
//
//	go run ./examples/crashrecovery            # both lives, fresh temp dir
//	go run ./examples/crashrecovery -dir d -phase write    # first life only
//	go run ./examples/crashrecovery -dir d -phase recover  # second life only
//
// The two-process form (-phase write, then -phase recover) shows the
// same thing across real process boundaries.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/afs"
)

func main() {
	dir := flag.String("dir", "", "store directory (default: a fresh temp dir)")
	phase := flag.String("phase", "both", "write, recover, or both")
	flag.Parse()

	if *dir == "" {
		d, err := os.MkdirTemp("", "afs-crashrecovery-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(d)
		*dir = d
	}
	fmt.Printf("store directory: %s\n", *dir)

	if *phase == "write" || *phase == "both" {
		write(*dir)
	}
	if *phase == "recover" || *phase == "both" {
		recover(*dir)
	}
}

// write is the first life: create a file, update it, crash.
func write(dir string) {
	cluster, err := afs.Start(afs.Options{Servers: 2, Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	c := cluster.NewClient()

	f, err := c.CreateFile([]byte("draft"))
	if err != nil {
		log.Fatal(err)
	}
	v, err := c.Update(f)
	if err != nil {
		log.Fatal(err)
	}
	if err := v.Write(afs.Root, []byte("the committed state")); err != nil {
		log.Fatal(err)
	}
	if err := v.Insert(afs.Root, 0, []byte("and a child page")); err != nil {
		log.Fatal(err)
	}
	if err := v.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("life 1: created file %v, committed an update\n", f)

	// Crash. No Close, no flush: Abandon drops the store's file
	// handles (and its single-writer directory lock) exactly as a
	// killed process would — run the two-process form (-phase) to see
	// the same thing with a real process boundary. Every acknowledged
	// write is already fsynced (group commit), so the disk state is
	// complete.
	cluster.Abandon()
	fmt.Println("life 1: CRASH (process state gone, store directory remains)")
}

// recover is the second life: nothing survives but the directory.
func recover(dir string) {
	cluster, err := afs.Start(afs.Options{Servers: 2, Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Rebuild the file table from the §4 recovery scan: list the
	// account's blocks, find the version pages, pick each file's
	// committed version. Fresh capabilities are minted — the old
	// process's secrets died with it.
	caps, err := cluster.RecoverFiles()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("life 2: recovered %d file(s) from the store\n", len(caps))

	c := cluster.NewClient()
	for _, f := range caps {
		root, err := c.ReadFile(f)
		if err != nil {
			log.Fatal(err)
		}
		v, err := c.Update(f)
		if err != nil {
			log.Fatal(err)
		}
		child, _, err := v.Read(afs.Path{0})
		if err != nil {
			log.Fatal(err)
		}
		v.Abort()
		fmt.Printf("life 2: file %d root = %q, page /0 = %q\n", f.Object, root, child)

		// The recovered file is fully live: commit another update.
		if err := c.WriteFile(f, append(root, " + post-crash update"...)); err != nil {
			log.Fatal(err)
		}
		round, _ := c.ReadFile(f)
		fmt.Printf("life 2: after new commit, root = %q\n", round)
	}
}
