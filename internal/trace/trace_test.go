package trace

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// always returns a tracer that samples everything.
func always(slow time.Duration) *Tracer { return New(1, slow, 64) }

func TestUnsampledIsFree(t *testing.T) {
	tr := New(0, 0, 16)
	sp, ctx := tr.Start("client", "commit")
	if sp != nil || ctx.Sampled() {
		t.Fatalf("unsampled Start: span=%v ctx=%+v", sp, ctx)
	}
	// Every derived operation must be inert.
	child, cctx := ctx.Start("server", "dispatch")
	child.End(nil)
	child.Adopt([]byte{1, 2, 3})
	if child != nil || cctx.Sampled() {
		t.Fatalf("derived span from unsampled context: %v %+v", child, cctx)
	}
	var nilTracer *Tracer
	if sp, _ := nilTracer.Start("x", "y"); sp != nil {
		t.Fatal("nil tracer minted a span")
	}
	if got := tr.Recent(10); len(got) != 0 {
		t.Fatalf("ring has %d traces, want 0", len(got))
	}
}

func TestSpanTreeAndFinish(t *testing.T) {
	tr := always(0)
	var done []*Trace
	tr.OnTrace = func(x *Trace) { done = append(done, x) }

	root, ctx := tr.Start("client", "commit")
	if root == nil {
		t.Fatal("sampled Start returned nil")
	}
	disp, dctx := ctx.Start("server", "dispatch")
	occ, _ := dctx.Start("occ", "commit")
	occ.End(nil)
	disp.End(nil)
	root.End(errors.New("boom"))

	if len(done) != 1 {
		t.Fatalf("OnTrace fired %d times, want 1", len(done))
	}
	got := done[0]
	if len(got.Spans) != 3 {
		t.Fatalf("trace has %d spans, want 3", len(got.Spans))
	}
	r := got.Root()
	if r.Layer != "client" || r.Err != "boom" {
		t.Fatalf("root = %+v", r)
	}
	byLayer := make(map[string]SpanRecord)
	for _, s := range got.Spans {
		byLayer[s.Layer] = s
	}
	if byLayer["server"].Parent != r.ID {
		t.Fatalf("dispatch parent %d, want root %d", byLayer["server"].Parent, r.ID)
	}
	if byLayer["occ"].Parent != byLayer["server"].ID {
		t.Fatalf("occ parent %d, want dispatch %d", byLayer["occ"].Parent, byLayer["server"].ID)
	}
	if got := tr.Recent(5); len(got) != 1 || got[0] != done[0] {
		t.Fatalf("ring contents: %v", got)
	}
	layers := done[0].Layers()
	if len(layers) != 3 {
		t.Fatalf("layers = %v", layers)
	}
}

func TestJoinRoundTrip(t *testing.T) {
	tr := always(0)
	root, ctx := tr.Start("client", "write")

	// Simulate the wire: the peer sees only the 17 bytes.
	wire := ctx.Wire()
	remote := ContextFromWire(wire[:])
	if remote.TraceID != ctx.TraceID || remote.SpanID != ctx.SpanID || !remote.Sampled() {
		t.Fatalf("wire round trip: %+v vs %+v", remote, ctx)
	}
	if remote.local() {
		t.Fatal("wire context should be detached")
	}

	joined, finish := Join(remote)
	sp, jctx := joined.Start("server", "dispatch")
	leg, _ := jctx.Start("shard", "leg-0")
	leg.End(nil)
	sp.End(nil)
	enc := finish()
	if len(enc) == 0 {
		t.Fatal("finish returned no records")
	}

	// Caller side: adopt and finish the root.
	root.Adopt(enc)
	root.End(nil)

	got := tr.Recent(1)[0]
	if len(got.Spans) != 3 {
		t.Fatalf("assembled trace has %d spans, want 3", len(got.Spans))
	}
	var disp SpanRecord
	for _, s := range got.Spans {
		if s.Layer == "server" {
			disp = s
		}
	}
	if disp.Parent != got.Root().ID {
		t.Fatalf("remote dispatch parent %d, want %d (root)", disp.Parent, got.Root().ID)
	}
}

func TestJoinLocalPassthrough(t *testing.T) {
	tr := always(0)
	root, ctx := tr.Start("client", "op")
	j, finish := Join(ctx)
	if !j.local() || j.col != ctx.col {
		t.Fatal("local context should pass through Join unchanged")
	}
	if finish() != nil {
		t.Fatal("local join must not re-encode spans")
	}
	root.End(nil)
}

func TestRecordCodec(t *testing.T) {
	in := []SpanRecord{
		{ID: 1, Parent: 0, Layer: "client", Name: "commit", Start: time.Unix(0, 12345), Dur: 99, Err: ""},
		{ID: 2, Parent: 1, Layer: "segstore", Name: "append+fsync", Start: time.Unix(1, 0), Dur: time.Millisecond, Err: "lane closed"},
	}
	out, err := DecodeRecords(EncodeRecords(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("round trip: %+v", out)
	}
	if _, err := DecodeRecords([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated input decoded cleanly")
	}

	tr := &Trace{ID: 77, Spans: in}
	back, err := DecodeTrace(EncodeTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != 77 || len(back.Spans) != 2 {
		t.Fatalf("trace round trip: %+v", back)
	}
}

func TestRingEvictionConcurrent(t *testing.T) {
	tr := New(1, 0, 32)
	const workers = 8
	const each = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				root, ctx := tr.Start("client", "op")
				sp, _ := ctx.Start("server", "dispatch")
				sp.End(nil)
				root.End(nil)
			}
		}()
	}
	wg.Wait()
	got := tr.Recent(0)
	if len(got) != 32 {
		t.Fatalf("ring holds %d traces, want full 32", len(got))
	}
	for _, x := range got {
		if x == nil || len(x.Spans) != 2 {
			t.Fatalf("evicted ring returned damaged trace: %+v", x)
		}
	}
}

func TestSlowest(t *testing.T) {
	tr := New(1, time.Nanosecond, 16)
	var slow []*Trace
	tr.OnSlow = func(x *Trace) { slow = append(slow, x) }
	root, _ := tr.Start("client", "op")
	time.Sleep(time.Microsecond)
	root.End(nil)
	if len(slow) != 1 || len(tr.Slowest()) != 1 {
		t.Fatalf("slow hooks: OnSlow=%d Slowest=%d", len(slow), len(tr.Slowest()))
	}
}

func TestWaterfallRender(t *testing.T) {
	tr := always(0)
	root, ctx := tr.Start("client", "commit")
	sp, _ := ctx.Start("server", "dispatch")
	sp.End(errors.New("conflict"))
	root.End(nil)
	var b strings.Builder
	WriteWaterfall(&b, tr.Recent(1)[0])
	out := b.String()
	for _, want := range []string{"client", "server", "dispatch", "error: conflict", "2 spans"} {
		if !strings.Contains(out, want) {
			t.Fatalf("waterfall missing %q:\n%s", want, out)
		}
	}
}

func TestSampleRatio(t *testing.T) {
	tr := New(0.5, 0, 16)
	hits := 0
	for i := 0; i < 2000; i++ {
		if sp, _ := tr.Start("c", "o"); sp != nil {
			sp.End(nil)
			hits++
		}
	}
	if hits < 700 || hits > 1300 {
		t.Fatalf("0.5 sampling hit %d/2000", hits)
	}
}
