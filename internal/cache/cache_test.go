package cache

import (
	"testing"

	"repro/internal/page"
)

func TestPutGetRoundTrip(t *testing.T) {
	c := New()
	p := page.Path{1, 2}
	c.Put(1, 10, p, Entry{Data: []byte("x"), NRefs: 3})
	e, ok := c.Get(1, 10, p)
	if !ok || string(e.Data) != "x" || e.NRefs != 3 {
		t.Fatalf("Get = %+v, %v", e, ok)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGetMissesWrongRootOrPath(t *testing.T) {
	c := New()
	c.Put(1, 10, page.RootPath, Entry{Data: []byte("x")})
	if _, ok := c.Get(1, 11, page.RootPath); ok {
		t.Fatal("hit with wrong root")
	}
	if _, ok := c.Get(1, 10, page.Path{0}); ok {
		t.Fatal("hit with wrong path")
	}
	if _, ok := c.Get(2, 10, page.RootPath); ok {
		t.Fatal("hit with wrong file")
	}
	if st := c.Stats(); st.Misses != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutNewerRootResetsFile(t *testing.T) {
	c := New()
	c.Put(1, 10, page.RootPath, Entry{Data: []byte("old")})
	c.Put(1, 20, page.Path{0}, Entry{Data: []byte("new")})
	if _, ok := c.Get(1, 10, page.RootPath); ok {
		t.Fatal("stale root entry survived")
	}
	if c.Len(1) != 1 {
		t.Fatalf("Len = %d", c.Len(1))
	}
}

func TestEntriesAreSharedNotCopied(t *testing.T) {
	// Entries are immutable and zero-copy: Put takes ownership of the
	// slice and Get hands the very same backing array back. (Before the
	// batched-I/O rework both directions copied the page data.)
	c := New()
	buf := []byte("abc")
	c.Put(1, 10, page.RootPath, Entry{Data: buf})
	e, ok := c.Get(1, 10, page.RootPath)
	if !ok {
		t.Fatal("miss")
	}
	if &e.Data[0] != &buf[0] {
		t.Fatal("Get copied the entry data; entries should be shared")
	}
	e2, _ := c.Get(1, 10, page.RootPath)
	if &e2.Data[0] != &buf[0] {
		t.Fatal("second Get copied the entry data")
	}
}

func TestApplyExactAndPrefix(t *testing.T) {
	c := New()
	for _, p := range []page.Path{page.RootPath, {0}, {1}, {1, 0}, {1, 1}, {2}} {
		c.Put(1, 10, p, Entry{Data: []byte(p.String())})
	}
	c.Apply(1, 20, Invalidation{
		Exact:    []page.Path{{0}},
		Prefixes: []page.Path{{1}},
	})
	// {0} gone (exact), {1} and children gone (prefix); root and {2}
	// survive, re-stamped for root 20.
	if _, ok := c.Get(1, 20, page.Path{0}); ok {
		t.Fatal("exact-invalidated entry survived")
	}
	for _, p := range []page.Path{{1}, {1, 0}, {1, 1}} {
		if _, ok := c.Get(1, 20, p); ok {
			t.Fatalf("prefix-invalidated entry %s survived", p)
		}
	}
	for _, p := range []page.Path{page.RootPath, {2}} {
		if _, ok := c.Get(1, 20, p); !ok {
			t.Fatalf("valid entry %s dropped", p)
		}
	}
	st := c.Stats()
	if st.Discards != 4 || st.Validations != 1 || st.NullValidations != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestApplyAll(t *testing.T) {
	c := New()
	c.Put(1, 10, page.RootPath, Entry{})
	c.Put(1, 10, page.Path{3}, Entry{})
	c.Apply(1, 20, Invalidation{All: true})
	if c.Len(1) != 0 {
		t.Fatal("All invalidation left entries")
	}
}

func TestApplyEmptyIsNullValidation(t *testing.T) {
	c := New()
	c.Put(1, 10, page.RootPath, Entry{Data: []byte("v")})
	c.Apply(1, 10, Invalidation{})
	if _, ok := c.Get(1, 10, page.RootPath); !ok {
		t.Fatal("null validation dropped entries")
	}
	st := c.Stats()
	if st.NullValidations != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDrop(t *testing.T) {
	c := New()
	c.Put(1, 10, page.RootPath, Entry{})
	c.Drop(1)
	if c.Len(1) != 0 {
		t.Fatal("Drop left entries")
	}
	if _, ok := c.Root(1); ok {
		t.Fatal("Root known after Drop")
	}
}
