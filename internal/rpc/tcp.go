package rpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/capability"
)

// The TCP transport carries one transaction per framed exchange:
//
//	frame := len(4 bytes, big endian) || port(8 bytes) || message
//
// A TCPServer hosts any number of service ports behind one listener; a
// TCPClient resolves ports to addresses through a static Resolver — the
// moral equivalent of Amoeba's locate broadcast, which needs no
// reproduction fidelity since port location is orthogonal to the paper's
// contribution.

// Resolver maps service ports to TCP addresses.
type Resolver struct {
	mu    sync.RWMutex
	addrs map[capability.Port]string
}

// NewResolver creates an empty resolver.
func NewResolver() *Resolver {
	return &Resolver{addrs: make(map[capability.Port]string)}
}

// Set binds port to a TCP address, replacing any previous binding.
func (r *Resolver) Set(port capability.Port, addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.addrs[port] = addr
}

// Lookup returns the address bound to port.
func (r *Resolver) Lookup(port capability.Port) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.addrs[port]
	return a, ok
}

// TCPServer serves transactions for a set of ports on one listener.
type TCPServer struct {
	mu        sync.RWMutex
	handlers  map[capability.Port]Handler
	conns     map[net.Conn]struct{}
	ln        net.Listener
	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewTCPServer starts a server listening on addr (e.g. "127.0.0.1:0").
func NewTCPServer(addr string) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: listen %s: %w", addr, err)
	}
	s := &TCPServer{
		handlers: make(map[capability.Port]Handler),
		conns:    make(map[net.Conn]struct{}),
		ln:       ln,
		closed:   make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address, for registration in a Resolver.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// Register installs h as the handler for port on this server.
func (s *TCPServer) Register(port capability.Port, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[port] = h
}

// Close stops the listener, drops open connections and waits for the
// connection goroutines to exit. Closing twice is safe.
func (s *TCPServer) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.closed)
		err = s.ln.Close()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		s.wg.Wait()
	})
	return err
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				// Transient accept failure; keep serving.
				continue
			}
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		port, req, err := readFrame(r)
		if err != nil {
			return // connection closed or corrupt; client will redial
		}
		s.mu.RLock()
		h, ok := s.handlers[port]
		s.mu.RUnlock()
		var resp *Message
		if !ok {
			resp = req.Errorf(StatusDeadPort, "no handler for port %v", port)
		} else {
			resp = safeHandle(h, req)
			if resp == nil {
				resp = req.Reply(StatusBadCommand)
			}
		}
		if err := writeFrame(w, port, resp); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// safeHandle runs a handler, converting a panic into an error reply:
// one malformed or hostile request must not take down a server process
// hosting every service port.
func safeHandle(h Handler, req *Message) (resp *Message) {
	defer func() {
		if r := recover(); r != nil {
			resp = req.Errorf(StatusIO, "rpc: handler panic: %v", r)
		}
	}()
	return h(req)
}

func writeFrame(w io.Writer, port capability.Port, m *Message) error {
	body, err := m.Encode(make([]byte, 0, m.encodedLen()))
	if err != nil {
		return err
	}
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(body)+8))
	binary.BigEndian.PutUint64(hdr[4:12], uint64(port))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

func readFrame(r io.Reader) (capability.Port, *Message, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n < 8 || n > MaxData+4096 {
		return 0, nil, fmt.Errorf("frame length %d: %w", n, ErrMalformed)
	}
	port := capability.Port(binary.BigEndian.Uint64(hdr[4:12]))
	body := make([]byte, n-8)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	m, err := DecodeMessage(body)
	return port, m, err
}

// RetryPolicy controls how a TCPClient handles connection-level
// failures: a failed dial, or a pooled connection that breaks during
// the exchange (the server restarted, the network blipped). Attempts
// counts total tries; the first retry redials immediately (the common
// case is just a stale pooled connection to a restarted server), and
// further retries back off exponentially from Backoff up to MaxBackoff.
//
// A retry after a broken exchange may re-deliver a request the server
// already executed; like Amoeba's trans(), the service protocols are
// built to tolerate re-sent requests (e.g. the commit path treats "my
// successor is already installed" as success).
type RetryPolicy struct {
	Attempts   int
	Backoff    time.Duration
	MaxBackoff time.Duration
}

// DefaultRetryPolicy is the policy NewTCPClient installs: enough
// attempts to ride out a quick server restart, cheap enough to fail
// fast when the server is really gone.
var DefaultRetryPolicy = RetryPolicy{Attempts: 4, Backoff: 2 * time.Millisecond, MaxBackoff: 50 * time.Millisecond}

// withDefaults fills unset fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = DefaultRetryPolicy.Attempts
	}
	if p.Backoff <= 0 {
		p.Backoff = DefaultRetryPolicy.Backoff
	}
	if p.MaxBackoff < p.Backoff {
		p.MaxBackoff = p.Backoff
	}
	return p
}

// TCPClient is a Transactor over TCP. It keeps one pooled connection per
// server address; one pooled connection may carry transactions from any
// number of goroutines (they serialise on the exchange).
type TCPClient struct {
	resolver *Resolver

	mu      sync.Mutex
	retry   RetryPolicy
	conns   map[string]*clientConn
	metrics *Metrics
}

type clientConn struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// NewTCPClient creates a client resolving ports through resolver, with
// DefaultRetryPolicy.
func NewTCPClient(resolver *Resolver) *TCPClient {
	return &TCPClient{resolver: resolver, retry: DefaultRetryPolicy, conns: make(map[string]*clientConn)}
}

// SetRetryPolicy replaces the connection-failure retry policy.
func (c *TCPClient) SetRetryPolicy(p RetryPolicy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.retry = p.withDefaults()
}

// SetMetrics installs a caller-side per-command metrics family; every
// Transact observes into it.
func (c *TCPClient) SetMetrics(m *Metrics) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.metrics = m
}

// Close drops all pooled connections.
func (c *TCPClient) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cc := range c.conns {
		cc.conn.Close()
	}
	c.conns = make(map[string]*clientConn)
}

func (c *TCPClient) getConn(addr string) (*clientConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cc, ok := c.conns[addr]; ok {
		return cc, nil
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	cc := &clientConn{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	c.conns[addr] = cc
	return cc, nil
}

func (c *TCPClient) dropConn(addr string, cc *clientConn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.conns[addr]; ok && cur == cc {
		cur.conn.Close()
		delete(c.conns, addr)
	}
}

// Transact implements Transactor. Connection-level failures are retried
// per the client's RetryPolicy (immediate redial first — the stale
// pooled connection to a restarted server — then exponential backoff);
// an unreachable or unresolvable service maps to ErrDeadPort so lock
// recovery behaves identically over TCP and in-proc. A live server
// answering for an unregistered port replies StatusDeadPort, which is
// final (no retry): the process is up, the service is not.
func (c *TCPClient) Transact(port capability.Port, req *Message) (*Message, error) {
	c.mu.Lock()
	pol := c.retry.withDefaults()
	met := c.metrics
	c.mu.Unlock()
	if met == nil {
		return c.transact(port, req, pol)
	}
	start := time.Now()
	resp, err := c.transact(port, req, pol)
	status := StatusOK
	if resp != nil {
		status = resp.Status
	}
	met.Observe(req.Command, time.Since(start), status, err != nil)
	return resp, err
}

func (c *TCPClient) transact(port capability.Port, req *Message, pol RetryPolicy) (*Message, error) {
	addr, ok := c.resolver.Lookup(port)
	if !ok {
		return nil, fmt.Errorf("port %v unresolved: %w", port, ErrDeadPort)
	}
	backoff := pol.Backoff
	var lastErr error
	for attempt := 0; attempt < pol.Attempts; attempt++ {
		if attempt > 1 {
			time.Sleep(backoff)
			if backoff *= 2; backoff > pol.MaxBackoff {
				backoff = pol.MaxBackoff
			}
		}
		cc, err := c.getConn(addr)
		if err != nil {
			lastErr = err
			continue
		}
		resp, err := c.exchange(cc, port, req)
		if err != nil {
			c.dropConn(addr, cc)
			lastErr = err
			continue
		}
		if resp.Status == StatusDeadPort && resp.Command == req.Command {
			return nil, fmt.Errorf("port %v: %w", port, ErrDeadPort)
		}
		return resp, nil
	}
	if lastErr == nil {
		lastErr = errors.New("rpc: exchange failed")
	}
	return nil, fmt.Errorf("port %v after %d attempts: %w (%v)", port, pol.Attempts, ErrDeadPort, lastErr)
}

func (c *TCPClient) exchange(cc *clientConn, port capability.Port, req *Message) (*Message, error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if err := writeFrame(cc.w, port, req); err != nil {
		return nil, err
	}
	if err := cc.w.Flush(); err != nil {
		return nil, err
	}
	_, resp, err := readFrame(cc.r)
	return resp, err
}

var _ Transactor = (*TCPClient)(nil)
