// Command afs-server runs an Amoeba File Service on TCP: any number of
// logical file server processes sharing one file table and one block
// store — an in-process simulated disk (-store=mem), a durable
// segment-log store on the local filesystem (-store=seg -dir=D), or
// one or more remote afs-block services mounted with
// -blocks PORT@ADDR[,PORT@ADDR...].
//
// With more than one mount the block services are composed behind the
// sharded facade (internal/shard): block numbers are partitioned across
// them by the fixed placement function, batched operations fan out one
// RPC stream per shard, and storage bandwidth scales with the number of
// block servers. The mount order is the placement order — reopening a
// deployment with the same stores in a different order is a different
// (wrong) layout.
//
// With a durable or remote store the server recovers on startup: it
// scans its account's blocks (§4; with shards, one concurrent scan per
// block server), rebuilds the file table from the version pages found,
// and mints fresh capabilities for the recovered files. Files written
// before a crash are served again after it.
//
// The service line printed on stdout (comma-separated PORT@ADDR pairs,
// one per file server; the service capability secret is kept
// in-process) is what the afs CLI consumes via -servers.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/block"
	"repro/internal/capability"
	"repro/internal/disk"
	"repro/internal/file"
	"repro/internal/gc"
	"repro/internal/rpc"
	"repro/internal/segstore"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/version"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:0", "TCP address to listen on")
		servers  = flag.Int("servers", 2, "number of file server processes")
		backend  = flag.String("store", "mem", "block store backend: mem or seg (ignored with -blocks)")
		dir      = flag.String("dir", "", "store directory (required with -store=seg)")
		nblocks  = flag.Int("nblocks", 1<<16, "blocks of the in-process store (ignored with -blocks)")
		bsize    = flag.Int("bsize", 4096, "block size of the in-process store (ignored with -blocks)")
		sync     = flag.String("sync", "group", "seg durability: group, each or none")
		compact  = flag.Duration("compact", time.Minute, "seg compaction interval (0 disables)")
		mounts   = flag.String("blocks", "", "remote block services as PORT@ADDR[,PORT@ADDR...] (from afs-block); two or more are sharded")
		mount    = flag.String("block", "", "single remote block service as PORT@ADDR (alias for -blocks)")
		gcEvery  = flag.Duration("gc", 5*time.Second, "garbage collection interval (0 disables)")
		gcRetain = flag.Int("retain", 4, "committed versions retained per file")
	)
	flag.Parse()

	mountList := *mounts
	if mountList == "" {
		mountList = *mount
	}

	var store block.Store
	var sharded *shard.Store
	var closeStore func()
	durable := false // the store may hold a file system from a past life
	switch {
	case mountList != "":
		remotes, err := dialMounts(mountList)
		if err != nil {
			log.Fatal(err)
		}
		if len(remotes) == 1 {
			store = remotes[0]
			log.Printf("mounted remote block service %s", mountList)
		} else {
			sharded, err = shard.New(remotes...)
			if err != nil {
				log.Fatalf("shard %s: %v", mountList, err)
			}
			store = sharded
			for _, st := range sharded.ShardStats() {
				log.Printf("  shard %d: %d/%d blocks in use", st.Shard, st.Usage.InUse, st.Usage.Capacity)
			}
			log.Printf("mounted %d block services behind the sharded facade", len(remotes))
		}
		durable = true
	case *backend == "seg":
		if *dir == "" {
			log.Fatal("-store=seg needs -dir")
		}
		mode, err := segstore.ParseSyncMode(*sync)
		if err != nil {
			log.Fatal(err)
		}
		st, err := segstore.Open(*dir, segstore.Options{
			BlockSize:    *bsize,
			Capacity:     *nblocks,
			Sync:         mode,
			CompactEvery: *compact,
		})
		if err != nil {
			log.Fatal(err)
		}
		store = st
		durable = true
		closeStore = func() {
			if err := st.Close(); err != nil {
				log.Printf("close store: %v", err)
			}
		}
		log.Printf("segstore %s: %d blocks in %d segments", *dir, st.InUse(), st.Segments())
	case *backend == "mem":
		d, err := disk.New(disk.Geometry{Blocks: *nblocks, BlockSize: *bsize})
		if err != nil {
			log.Fatal(err)
		}
		store = block.NewServer(d)
	default:
		log.Fatalf("unknown -store %q (want mem or seg)", *backend)
	}

	sh := server.NewShared(store, 1)
	// If the store already holds a file system (a durable directory or
	// a remote block server that survived us), rebuild the file table
	// from the §4 recovery scan and mint fresh capabilities for the
	// recovered files.
	if durable {
		st := version.NewStore(store, sh.Acct)
		t, err := file.Rebuild(st)
		if err != nil {
			// Starting empty over a store we cannot read would leave
			// the old files allocated but unreachable.
			log.Fatalf("recover file table: %v", err)
		}
		if t.Len() > 0 {
			caps := sh.AdoptTable(t)
			log.Printf("recovered %d files from block store", len(caps))
			for obj, c := range caps {
				// The text form is what the afs CLI accepts.
				log.Printf("  file %d: %s", obj, c.Text())
			}
		}
	}

	tcp, err := rpc.NewTCPServer(*listen)
	if err != nil {
		log.Fatal(err)
	}
	var srvs []*server.Server
	var endpoints []string
	for i := 0; i < *servers; i++ {
		s := server.New(sh, nil)
		tcp.Register(s.Port(), s.Handler())
		srvs = append(srvs, s)
		endpoints = append(endpoints, fmt.Sprintf("%s@%s", s.Port(), tcp.Addr()))
	}
	fmt.Println(strings.Join(endpoints, ","))
	log.Printf("file service up: %d servers at %s", *servers, tcp.Addr())

	stop := make(chan struct{})
	if *gcEvery > 0 {
		col := gc.New(version.NewStore(store, sh.Acct), sh.Table, *gcRetain, func() []block.Num {
			var out []block.Num
			for _, s := range srvs {
				out = append(out, s.LiveVersions()...)
			}
			return out
		})
		go col.Run(*gcEvery, stop, nil)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	close(stop)
	tcp.Close()
	if closeStore != nil {
		closeStore()
	}
	if sharded != nil {
		for _, st := range sharded.ShardStats() {
			log.Printf("shard %d: %d reads, %d writes, %d allocs, %d frees, %d fsyncs",
				st.Shard, st.Stats.Reads, st.Stats.Writes, st.Stats.Allocs, st.Stats.Frees, st.Stats.Syncs)
		}
	}
	log.Printf("file service down: %d files", sh.Table.Len())
}

// dialMounts parses a comma-separated PORT@ADDR list and dials each
// endpoint, in order (the order is the shard placement order).
func dialMounts(list string) ([]block.Store, error) {
	var out []block.Store
	for _, m := range strings.Split(list, ",") {
		m = strings.TrimSpace(m)
		if m == "" {
			continue
		}
		port, addr, err := splitMount(m)
		if err != nil {
			return nil, err
		}
		res := rpc.NewResolver()
		res.Set(port, addr)
		remote, err := block.Dial(rpc.NewTCPClient(res), port)
		if err != nil {
			return nil, fmt.Errorf("mount %s: %w", m, err)
		}
		out = append(out, remote)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("mount list %q names no endpoints", list)
	}
	return out, nil
}

// splitMount parses PORT@ADDR.
func splitMount(s string) (capability.Port, string, error) {
	i := strings.IndexByte(s, '@')
	if i < 0 {
		return 0, "", fmt.Errorf("mount %q: want PORT@ADDR", s)
	}
	var p uint64
	if _, err := fmt.Sscanf(s[:i], "%x", &p); err != nil {
		return 0, "", fmt.Errorf("mount %q: bad port: %w", s, err)
	}
	return capability.Port(p), s[i+1:], nil
}
