// Command compilertmp demonstrates the Bauer principle that shaped the
// design (§2): "You should not have to pay for those features you do not
// need."
//
// A compiler writing temporary files before calling the linking loader
// shares them with nobody. The paper's answer (§6): "Pages of 32K bytes
// can be written. Often, one such page is large enough to contain a whole
// file. Writing these one-page files is efficient; no concurrency control
// mechanisms slow it down." This example writes a batch of one-page
// temporaries and shows, via the server's own instrumentation, that not a
// single serialisability validation ran and every commit took the fast
// path.
package main

import (
	"fmt"
	"log"

	"repro/afs"
)

const objects = 32

func main() {
	cluster, err := afs.Start(afs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	c := cluster.NewClient()

	// "Compile": write one object file per source file, then "link":
	// read them all back.
	var caps []afs.Capability
	for i := 0; i < objects; i++ {
		f, err := c.CreateFile(objectCode(i))
		if err != nil {
			log.Fatal(err)
		}
		caps = append(caps, f)
	}
	// Recompile half of them (a second write to the same temp file).
	for i := 0; i < objects/2; i++ {
		if err := c.WriteFile(caps[i], objectCode(i+1000)); err != nil {
			log.Fatal(err)
		}
	}
	// Link: read everything.
	total := 0
	for _, f := range caps {
		data, err := c.ReadFile(f)
		if err != nil {
			log.Fatal(err)
		}
		total += len(data)
	}

	stats := cluster.Internal().Servers[0].OCCStats()
	fmt.Printf("wrote %d temporaries (%d rewrites), linked %d bytes\n",
		objects, objects/2, total)
	fmt.Printf("commits: %d, fast-path commits: %d, validations: %d, conflicts: %d\n",
		stats.Commits.Load(), stats.FastCommits.Load(),
		stats.Validations.Load(), stats.Conflicts.Load())
	if stats.Validations.Load() != 0 || stats.Conflicts.Load() != 0 {
		log.Fatal("unshared one-page files paid for concurrency control")
	}
	fmt.Println("no concurrency-control machinery was exercised: the simple user did not pay")
}

// objectCode fabricates a one-page "object file".
func objectCode(seed int) []byte {
	out := make([]byte, 512)
	for i := range out {
		out[i] = byte(seed + i)
	}
	return out
}
