package segstore

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/block"
	"repro/internal/disk"
)

// The contract tests drive the in-memory block.Server and segstore
// through identical operation sequences and require identical outcomes:
// same success/failure classification (by sentinel error), same data,
// same allocation results, same recovery scans. Whatever the file
// service layers can observe through block.Store must not distinguish
// the backends.

// contractOp is one step of a scripted sequence.
type contractOp struct {
	op    string // alloc, write, read, free, lock, unlock, recover
	acct  block.Account
	n     int    // index into previously allocated blocks (-1: bogus block)
	data  string // payload for alloc/write
	check func(t *testing.T, err error)
}

// classify reduces an error to the contract-visible sentinel.
func classify(err error) error {
	for _, s := range []error{block.ErrNoSpace, block.ErrNotAllocated, block.ErrNotOwner,
		block.ErrLocked, block.ErrNotLocked} {
		if errors.Is(err, s) {
			return s
		}
	}
	if err != nil {
		return errors.New("other")
	}
	return nil
}

// newPair builds both backends with the same capacity and block size.
func newPair(t *testing.T, capacity, blockSize int) (*block.Server, *Store) {
	t.Helper()
	mem := block.NewServer(disk.MustNew(disk.Geometry{Blocks: capacity + 1, BlockSize: blockSize}))
	seg, err := Open(t.TempDir(), Options{BlockSize: blockSize, Capacity: capacity, SegmentRecords: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { seg.Close() })
	return mem, seg
}

// runScript applies ops to both stores in lockstep, comparing outcomes.
func runScript(t *testing.T, mem *block.Server, seg *Store, ops []contractOp) {
	t.Helper()
	var memBlocks, segBlocks []block.Num
	pick := func(blocks []block.Num, i int) block.Num {
		if i < 0 || i >= len(blocks) {
			return block.Num(4000) // never allocated
		}
		return blocks[i]
	}
	for i, op := range ops {
		var memErr, segErr error
		var memData, segData []byte
		switch op.op {
		case "alloc":
			var mn, sn block.Num
			mn, memErr = mem.Alloc(op.acct, []byte(op.data))
			sn, segErr = seg.Alloc(op.acct, []byte(op.data))
			if (memErr == nil) != (segErr == nil) {
				t.Fatalf("op %d alloc: mem err %v, seg err %v", i, memErr, segErr)
			}
			if memErr == nil {
				memBlocks = append(memBlocks, mn)
				segBlocks = append(segBlocks, sn)
			}
		case "write":
			memErr = mem.Write(op.acct, pick(memBlocks, op.n), []byte(op.data))
			segErr = seg.Write(op.acct, pick(segBlocks, op.n), []byte(op.data))
		case "read":
			memData, memErr = mem.Read(op.acct, pick(memBlocks, op.n))
			segData, segErr = seg.Read(op.acct, pick(segBlocks, op.n))
		case "free":
			memErr = mem.Free(op.acct, pick(memBlocks, op.n))
			segErr = seg.Free(op.acct, pick(segBlocks, op.n))
		case "lock":
			memErr = mem.Lock(op.acct, pick(memBlocks, op.n))
			segErr = seg.Lock(op.acct, pick(segBlocks, op.n))
		case "unlock":
			memErr = mem.Unlock(op.acct, pick(memBlocks, op.n))
			segErr = seg.Unlock(op.acct, pick(segBlocks, op.n))
		case "recover":
			var mr, sr []block.Num
			mr, memErr = mem.Recover(op.acct)
			sr, segErr = seg.Recover(op.acct)
			if len(mr) != len(sr) {
				t.Fatalf("op %d recover(%d): mem %d blocks, seg %d blocks", i, op.acct, len(mr), len(sr))
			}
		case "readmulti", "writemulti", "freemulti":
			// Three consecutive indices (some possibly bogus) exercise
			// the partial-failure contract on both backends at once.
			var memNs, segNs []block.Num
			for k := 0; k < 3; k++ {
				memNs = append(memNs, pick(memBlocks, op.n+k))
				segNs = append(segNs, pick(segBlocks, op.n+k))
			}
			switch op.op {
			case "readmulti":
				var md, sd [][]byte
				md, memErr = mem.ReadMulti(op.acct, memNs)
				sd, segErr = seg.ReadMulti(op.acct, segNs)
				if memErr == nil && segErr == nil {
					for k := range md {
						if !bytes.Equal(md[k], sd[k]) {
							t.Fatalf("op %d readmulti: entry %d disagrees", i, k)
						}
					}
				}
			case "writemulti":
				payloads := [][]byte{[]byte(op.data + "-0"), []byte(op.data + "-1"), []byte(op.data + "-2")}
				memErr = mem.WriteMulti(op.acct, memNs, payloads)
				segErr = seg.WriteMulti(op.acct, segNs, payloads)
			case "freemulti":
				memErr = mem.FreeMulti(op.acct, memNs)
				segErr = seg.FreeMulti(op.acct, segNs)
			}
		case "allocmulti":
			payloads := [][]byte{[]byte(op.data + "-a"), []byte(op.data + "-b")}
			var mn, sn []block.Num
			mn, memErr = mem.AllocMulti(op.acct, payloads)
			sn, segErr = seg.AllocMulti(op.acct, payloads)
			if (memErr == nil) != (segErr == nil) {
				t.Fatalf("op %d allocmulti: mem err %v, seg err %v", i, memErr, segErr)
			}
			if memErr == nil {
				memBlocks = append(memBlocks, mn...)
				segBlocks = append(segBlocks, sn...)
			}
		default:
			t.Fatalf("op %d: unknown op %q", i, op.op)
		}
		if mc, sc := classify(memErr), classify(segErr); !errors.Is(mc, sc) && (mc != nil || sc != nil) {
			t.Fatalf("op %d %s: mem %v, seg %v", i, op.op, memErr, segErr)
		}
		if op.op == "read" && memErr == nil && !bytes.Equal(memData, segData) {
			t.Fatalf("op %d read: backends disagree on contents (%q vs %q)", i, memData[:8], segData[:8])
		}
		if op.check != nil {
			op.check(t, segErr)
		}
	}
}

func TestContractTable(t *testing.T) {
	wantErr := func(sentinel error) func(*testing.T, error) {
		return func(t *testing.T, err error) {
			t.Helper()
			if !errors.Is(err, sentinel) {
				t.Fatalf("err = %v, want %v", err, sentinel)
			}
		}
	}
	mem, seg := newPair(t, 64, 128)
	runScript(t, mem, seg, []contractOp{
		{op: "alloc", acct: 1, data: "alpha"},
		{op: "alloc", acct: 1, data: "beta"},
		{op: "alloc", acct: 2, data: "gamma"},
		{op: "read", acct: 1, n: 0},
		{op: "read", acct: 2, n: 0, check: wantErr(block.ErrNotOwner)},
		{op: "read", acct: 1, n: -1, check: wantErr(block.ErrNotAllocated)},
		{op: "write", acct: 1, n: 0, data: "alpha-2"},
		{op: "read", acct: 1, n: 0},
		{op: "lock", acct: 1, n: 1},
		{op: "lock", acct: 1, n: 1, check: wantErr(block.ErrLocked)},
		{op: "lock", acct: 2, n: 1, check: wantErr(block.ErrNotOwner)},
		{op: "unlock", acct: 1, n: 1},
		{op: "unlock", acct: 1, n: 1, check: wantErr(block.ErrNotLocked)},
		{op: "free", acct: 2, n: 1, check: wantErr(block.ErrNotOwner)},
		{op: "free", acct: 1, n: 1},
		{op: "read", acct: 1, n: 1, check: wantErr(block.ErrNotAllocated)},
		{op: "write", acct: 1, n: 1, data: "x", check: wantErr(block.ErrNotAllocated)},
		{op: "recover", acct: 1},
		{op: "recover", acct: 2},
		{op: "recover", acct: 3},
		{op: "alloc", acct: 3, data: "delta"},
		{op: "recover", acct: 3},
	})
}

func TestContractExhaustion(t *testing.T) {
	mem, seg := newPair(t, 4, 64)
	var ops []contractOp
	for i := 0; i < 4; i++ {
		ops = append(ops, contractOp{op: "alloc", acct: 1, data: fmt.Sprint(i)})
	}
	ops = append(ops,
		contractOp{op: "alloc", acct: 1, data: "over", check: func(t *testing.T, err error) {
			t.Helper()
			if !errors.Is(err, block.ErrNoSpace) {
				t.Fatalf("err = %v, want ErrNoSpace", err)
			}
		}},
		contractOp{op: "free", acct: 1, n: 2},
		contractOp{op: "alloc", acct: 1, data: "reuse"},
		contractOp{op: "recover", acct: 1},
	)
	runScript(t, mem, seg, ops)
}

// TestContractMultiOps drives the four multi-block operations through
// both backends in lockstep, including the partial-failure semantics of
// the MultiStore contract: WriteMulti/FreeMulti apply per-block and
// report the first error, ReadMulti is all-or-nothing, AllocMulti rolls
// back on failure.
func TestContractMultiOps(t *testing.T) {
	mem, seg := newPair(t, 16, 64)
	both := []struct {
		name string
		st   block.MultiStore
	}{{"mem", mem}, {"seg", seg}}

	type state struct {
		mine   []block.Num
		theirs block.Num
	}
	states := make(map[string]*state)

	for _, b := range both {
		st := b.st
		s := &state{}
		states[b.name] = s
		var err error
		s.mine, err = st.AllocMulti(1, [][]byte{[]byte("a0"), []byte("a1"), []byte("a2"), []byte("a3")})
		if err != nil {
			t.Fatalf("%s: alloc: %v", b.name, err)
		}
		s.theirs, err = st.Alloc(2, []byte("theirs"))
		if err != nil {
			t.Fatalf("%s: foreign alloc: %v", b.name, err)
		}

		// ReadMulti round trip, then all-or-nothing on a foreign block.
		got, err := st.ReadMulti(1, s.mine)
		if err != nil {
			t.Fatalf("%s: read multi: %v", b.name, err)
		}
		for i := range got {
			want := fmt.Sprintf("a%d", i)
			if string(got[i][:2]) != want {
				t.Fatalf("%s: block %d = %q", b.name, i, got[i][:2])
			}
		}
		if _, err := st.ReadMulti(1, []block.Num{s.mine[0], s.theirs}); !errors.Is(err, block.ErrNotOwner) {
			t.Fatalf("%s: foreign read err = %v", b.name, err)
		}

		// WriteMulti with a foreign block in the middle: first error is
		// ErrNotOwner, the other two blocks are written regardless.
		err = st.WriteMulti(1,
			[]block.Num{s.mine[0], s.theirs, s.mine[2]},
			[][]byte{[]byte("w0"), []byte("xx"), []byte("w2")})
		if !errors.Is(err, block.ErrNotOwner) {
			t.Fatalf("%s: partial write err = %v", b.name, err)
		}
		for _, c := range []struct {
			n    block.Num
			want string
		}{{s.mine[0], "w0"}, {s.mine[1], "a1"}, {s.mine[2], "w2"}} {
			got, err := st.Read(1, c.n)
			if err != nil {
				t.Fatalf("%s: %v", b.name, err)
			}
			if string(got[:2]) != c.want {
				t.Fatalf("%s: block %d = %q, want %q", b.name, c.n, got[:2], c.want)
			}
		}
		if got, _ := st.Read(2, s.theirs); string(got[:6]) != "theirs" {
			t.Fatalf("%s: foreign block clobbered", b.name)
		}

		// AllocMulti beyond capacity: all-or-nothing rollback.
		over := make([][]byte, 16)
		for i := range over {
			over[i] = []byte{byte(i)}
		}
		if _, err := st.AllocMulti(1, over); !errors.Is(err, block.ErrNoSpace) {
			t.Fatalf("%s: overflow err = %v", b.name, err)
		}

		// FreeMulti with a foreign block: first error reported, the
		// caller's blocks still freed.
		err = st.FreeMulti(1, []block.Num{s.mine[0], s.theirs, s.mine[1]})
		if !errors.Is(err, block.ErrNotOwner) {
			t.Fatalf("%s: partial free err = %v", b.name, err)
		}
		if _, err := st.Read(1, s.mine[0]); !errors.Is(err, block.ErrNotAllocated) {
			t.Fatalf("%s: mine[0] survived: %v", b.name, err)
		}
		if _, err := st.Read(1, s.mine[1]); !errors.Is(err, block.ErrNotAllocated) {
			t.Fatalf("%s: mine[1] survived: %v", b.name, err)
		}
		if _, err := st.Read(2, s.theirs); err != nil {
			t.Fatalf("%s: foreign block freed: %v", b.name, err)
		}
	}

	// The recovery scans of the two backends must agree exactly.
	for _, acct := range []block.Account{1, 2} {
		mr, _ := mem.Recover(acct)
		sr, _ := seg.Recover(acct)
		if len(mr) != len(sr) {
			t.Fatalf("recover(%d): mem %d blocks, seg %d blocks", acct, len(mr), len(sr))
		}
	}
}

// FuzzContract feeds random operation scripts to both backends. The
// seed corpus runs under plain `go test`; `go test -fuzz=FuzzContract`
// explores further.
func FuzzContract(f *testing.F) {
	f.Add([]byte{0x00, 0x10, 0x21, 0x32, 0x43, 0x04, 0x15})
	f.Add([]byte{0x00, 0x00, 0x00, 0x50, 0x50, 0x30, 0x30, 0x60})
	f.Add([]byte{0x00, 0x41, 0x41, 0x11, 0x21, 0x31, 0x01, 0x51, 0x11})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 256 {
			script = script[:256]
		}
		mem, seg := newPair(t, 16, 64)
		var ops []contractOp
		for i, b := range script {
			// Low nibble: operation. High nibble: block index (alloc:
			// payload seed; the account alternates with the index so
			// ownership violations get exercised too).
			idx := int(b >> 4)
			acct := block.Account(1 + idx%2)
			switch b & 0x0F {
			case 0, 1:
				ops = append(ops, contractOp{op: "alloc", acct: acct, data: fmt.Sprintf("p%d-%d", i, idx)})
			case 2:
				ops = append(ops, contractOp{op: "write", acct: acct, n: idx, data: fmt.Sprintf("w%d", i)})
			case 3:
				ops = append(ops, contractOp{op: "read", acct: acct, n: idx})
			case 4:
				ops = append(ops, contractOp{op: "free", acct: acct, n: idx})
			case 5:
				ops = append(ops, contractOp{op: "lock", acct: acct, n: idx})
			case 6:
				ops = append(ops, contractOp{op: "unlock", acct: acct, n: idx})
			case 7:
				ops = append(ops, contractOp{op: "readmulti", acct: acct, n: idx})
			case 8:
				ops = append(ops, contractOp{op: "writemulti", acct: acct, n: idx, data: fmt.Sprintf("m%d", i)})
			case 9:
				ops = append(ops, contractOp{op: "freemulti", acct: acct, n: idx})
			case 10:
				ops = append(ops, contractOp{op: "allocmulti", acct: acct, data: fmt.Sprintf("b%d-%d", i, idx)})
			default:
				ops = append(ops, contractOp{op: "recover", acct: acct})
			}
		}
		runScript(t, mem, seg, ops)
	})
}
