package main

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/baseline/lockfs"
	"repro/internal/block"
	"repro/internal/capability"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/occ"
	"repro/internal/page"
	"repro/internal/server"
	"repro/internal/stable"
	"repro/internal/version"
)

// runE6 measures the §5.3 locking layer: the cost of super-file updates,
// the exclusion they provide, and the soft-lock ablation (how much work
// a large optimistic update wastes against many small writers, with and
// without respecting the top-lock hint).
func runE6() error {
	// (a) Update cost: small file vs super-file (locks + sub-commits).
	fmt.Println("\n(a) Update+commit latency:")
	header("kind", "rounds", "µs/update")
	const rounds = 1000
	{
		srv, err := newService()
		if err != nil {
			return err
		}
		fcap, err := flatFile(srv, 4, make([]byte, 128))
		if err != nil {
			return err
		}
		start := time.Now()
		for i := 0; i < rounds; i++ {
			v, _ := srv.CreateVersion(fcap, server.CreateVersionOpts{})
			srv.WritePage(v, page.Path{0}, []byte("s"))
			if err := srv.Commit(v); err != nil {
				return err
			}
		}
		row("small file", rounds, float64(time.Since(start).Microseconds())/rounds)
	}
	{
		srv, err := newService()
		if err != nil {
			return err
		}
		superCap, err := srv.CreateFile([]byte("super"))
		if err != nil {
			return err
		}
		v, _ := srv.CreateVersion(superCap, server.CreateVersionOpts{})
		if _, err := srv.CreateSubFile(v, page.RootPath, 0, []byte("sub")); err != nil {
			return err
		}
		if err := srv.Commit(v); err != nil {
			return err
		}
		start := time.Now()
		for i := 0; i < rounds; i++ {
			v, err := srv.CreateVersion(superCap, server.CreateVersionOpts{})
			if err != nil {
				return err
			}
			if err := srv.WritePage(v, page.Path{0}, []byte("x")); err != nil {
				return err
			}
			if err := srv.Commit(v); err != nil {
				return err
			}
		}
		row("super file", rounds, float64(time.Since(start).Microseconds())/rounds)
	}

	// (b) Soft-lock ablation: one large updater (writes every page)
	// against a stream of small writers on the same small file. Without
	// the hint the big update keeps losing validations (wasted work);
	// respecting the hint makes the small writers yield.
	fmt.Println("\n(b) Large update vs 4 small writers on one file (soft-lock ablation):")
	header("discipline", "big-redo count", "big latency ms", "small commits")
	for _, soft := range []bool{false, true} {
		srv, err := newService()
		if err != nil {
			return err
		}
		srv.LockManager().Poll = 100 * time.Microsecond
		srv.LockManager().Patience = time.Second
		const pages = 24
		fcap, err := flatFile(srv, pages, make([]byte, 64))
		if err != nil {
			return err
		}
		stop := make(chan struct{})
		var smallCommits, bigRedo int64
		var wg sync.WaitGroup
		// Small writers: single-page updates that ignore hints unless
		// soft discipline is on (then they respect the top hint).
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				i := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					i++
					opts := server.CreateVersionOpts{RespectTopHint: soft}
					v, err := srv.CreateVersion(fcap, opts)
					if err != nil {
						continue
					}
					if err := srv.WritePage(v, page.Path{(w*7 + i) % pages}, []byte("s")); err != nil {
						srv.Abort(v)
						continue
					}
					if srv.Commit(v) == nil {
						smallCommits++
					}
					time.Sleep(150 * time.Microsecond)
				}
			}(w)
		}
		// The big updater rewrites every page; with soft locking its
		// own top lock (held via super discipline) keeps the small
		// writers out. Without it, the §6 starvation risk is real —
		// "starvation may occur, especially when a large update must
		// be carried out on a heavily shared file" — so the redo count
		// is capped.
		const redoCap = 60
		starved := false
		bigStart := time.Now()
		for {
			if bigRedo >= redoCap {
				starved = true
				break
			}
			opts := server.CreateVersionOpts{}
			if soft {
				opts.RespectTopHint = true
			}
			v, err := srv.CreateVersion(fcap, opts)
			if err != nil {
				time.Sleep(time.Millisecond)
				continue
			}
			failed := false
			for p := 0; p < pages; p++ {
				// Read-modify-write: the read makes the page part of
				// the update's read set, so any small writer that
				// commits meanwhile forces a redo.
				if _, _, err := srv.ReadPage(v, page.Path{p}); err != nil {
					failed = true
					break
				}
				if err := srv.WritePage(v, page.Path{p}, []byte("BIG")); err != nil {
					failed = true
					break
				}
				time.Sleep(50 * time.Microsecond) // the update is slow: that is the point
			}
			if failed {
				srv.Abort(v)
				bigRedo++
				continue
			}
			err = srv.Commit(v)
			if err == nil {
				break
			}
			if !errors.Is(err, occ.ErrConflict) {
				return err
			}
			bigRedo++
		}
		bigLatency := time.Since(bigStart)
		close(stop)
		wg.Wait()
		name := "optimistic only"
		if soft {
			name = "soft top-lock"
		}
		lat := fmt.Sprintf("%.0f", float64(bigLatency.Milliseconds()))
		redo := fmt.Sprintf("%d", bigRedo)
		if starved {
			redo = fmt.Sprintf(">=%d (starved)", redoCap)
			lat = "gave up"
		}
		row(name, redo, lat, smallCommits)
	}
	fmt.Println("\nWithout the hint the large read-modify-write update starves against")
	fmt.Println("the small-writer stream — the §6 starvation risk. The soft top lock")
	fmt.Println("(§5.3) bounds its redo work by postponing the small writers, at the")
	fmt.Println("price of their concurrency: 'Locking should be the exception rather")
	fmt.Println("than the rule.'")
	return nil
}

// runE7 measures the §5.4 cache: traffic with and without the client
// cache for unshared and shared files.
func runE7() error {
	fmt.Println("\nClient re-reading a 16-page file (update+read-all+abort cycles):")
	header("mode", "cycles", "bytes fetched", "bytes saved", "null valid.")
	const cycles = 200
	for _, cached := range []bool{false, true} {
		cluster, err := core.NewCluster(core.Config{Servers: 1, DiskBlocks: 1 << 18, BlockSize: 4096})
		if err != nil {
			return err
		}
		cl := cluster.Client()
		fcap, err := cl.CreateFile(nil)
		if err != nil {
			return err
		}
		v, err := cl.Update(fcap, client.UpdateOpts{})
		if err != nil {
			return err
		}
		for i := 0; i < 16; i++ {
			if err := v.Insert(page.RootPath, i, make([]byte, 1024)); err != nil {
				return err
			}
		}
		if err := v.Commit(); err != nil {
			return err
		}
		for c := 0; c < cycles; c++ {
			if !cached {
				cl.Cache.Drop(fcap.Object)
			}
			v, err := cl.Update(fcap, client.UpdateOpts{})
			if err != nil {
				return err
			}
			for i := 0; i < 16; i++ {
				if _, _, err := v.Read(page.Path{i}); err != nil {
					return err
				}
			}
			v.Abort()
		}
		st := cl.Stats()
		cs := cl.Cache.Stats()
		name := "no cache"
		if cached {
			name = "cache"
		}
		row(name, cycles, st.BytesFetched, st.BytesSaved, cs.NullValidations)
	}

	fmt.Println("\nShared file: a second client rewrites k of 16 pages between reads;")
	fmt.Println("validation discards exactly the rewritten pages:")
	header("pages dirtied", "discarded/cycle", "bytes refetched/cycle")
	for _, dirty := range []int{0, 1, 4, 16} {
		cluster, err := core.NewCluster(core.Config{Servers: 1, DiskBlocks: 1 << 18, BlockSize: 4096})
		if err != nil {
			return err
		}
		reader := cluster.Client()
		writer := cluster.Client()
		fcap, err := reader.CreateFile(nil)
		if err != nil {
			return err
		}
		v, _ := reader.Update(fcap, client.UpdateOpts{})
		for i := 0; i < 16; i++ {
			v.Insert(page.RootPath, i, make([]byte, 1024))
		}
		if err := v.Commit(); err != nil {
			return err
		}
		// Warm the reader's cache.
		warm, _ := reader.Update(fcap, client.UpdateOpts{})
		for i := 0; i < 16; i++ {
			warm.Read(page.Path{i})
		}
		warm.Abort()

		const rounds = 50
		var discarded, refetched uint64
		for r := 0; r < rounds; r++ {
			wv, err := writer.Update(fcap, client.UpdateOpts{})
			if err != nil {
				return err
			}
			for k := 0; k < dirty; k++ {
				if err := wv.Write(page.Path{k}, make([]byte, 1024)); err != nil {
					return err
				}
			}
			if err := wv.Commit(); err != nil {
				return err
			}
			d0 := reader.Cache.Stats().Discards
			f0 := reader.Stats().BytesFetched
			rv, err := reader.Update(fcap, client.UpdateOpts{})
			if err != nil {
				return err
			}
			for i := 0; i < 16; i++ {
				if _, _, err := rv.Read(page.Path{i}); err != nil {
					return err
				}
			}
			rv.Abort()
			discarded += reader.Cache.Stats().Discards - d0
			refetched += reader.Stats().BytesFetched - f0
		}
		row(dirty, float64(discarded)/rounds, float64(refetched)/rounds)
	}
	fmt.Println("\nCost scales with what actually changed — and the server never sent")
	fmt.Println("an unsolicited message (there is no such message in the protocol).")
	return nil
}

// runE8 measures the §4 paired block servers: write amplification,
// collision handling, and the two recovery paths (intentions replay vs
// full copy).
func runE8() error {
	geo := disk.Geometry{Blocks: 1 << 16, BlockSize: 4096}
	payload := make([]byte, 4096)
	const rounds = 5000

	fmt.Println("\n(a) Latency (µs/op):")
	header("store", "write", "read")
	{
		s := block.NewServer(disk.MustNew(geo))
		n, _ := s.Alloc(1, payload)
		t0 := time.Now()
		for i := 0; i < rounds; i++ {
			s.Write(1, n, payload)
		}
		w := time.Since(t0)
		t0 = time.Now()
		for i := 0; i < rounds; i++ {
			s.Read(1, n)
		}
		r := time.Since(t0)
		row("single", float64(w.Microseconds())/rounds, float64(r.Microseconds())/rounds)
	}
	{
		p := stable.NewFailoverPair(block.NewServer(disk.MustNew(geo)), block.NewServer(disk.MustNew(geo)))
		n, _ := p.Alloc(1, payload)
		t0 := time.Now()
		for i := 0; i < rounds; i++ {
			p.Write(1, n, payload)
		}
		w := time.Since(t0)
		t0 = time.Now()
		for i := 0; i < rounds; i++ {
			p.Read(1, n)
		}
		r := time.Since(t0)
		row("pair", float64(w.Microseconds())/rounds, float64(r.Microseconds())/rounds)
	}

	fmt.Println("\n(b) Crash of one half, mutations during the outage, then rejoin:")
	header("outage writes", "recovery", "replayed", "rejoin µs")
	for _, writes := range []int{10, 100, 1000} {
		p := stable.NewFailoverPair(block.NewServer(disk.MustNew(geo)), block.NewServer(disk.MustNew(geo)))
		a, b := p.Halves()
		n, err := p.Alloc(1, payload)
		if err != nil {
			return err
		}
		b.Crash()
		for i := 0; i < writes; i++ {
			if err := a.Write(1, n, payload); err != nil {
				return err
			}
		}
		t0 := time.Now()
		if err := b.Rejoin(); err != nil {
			return err
		}
		row(writes, "intentions", a.Stats().Replayed, float64(time.Since(t0).Microseconds()))
	}
	// Full-copy path: both halves crash, intentions lost.
	{
		p := stable.NewFailoverPair(block.NewServer(disk.MustNew(geo)), block.NewServer(disk.MustNew(geo)))
		a, b := p.Halves()
		for i := 0; i < 500; i++ {
			if _, err := p.Alloc(1, payload); err != nil {
				return err
			}
		}
		b.Crash()
		if err := a.Write(1, 1, payload); err != nil {
			return err
		}
		a.Crash()
		if err := a.Rejoin(); err != nil {
			return err
		}
		t0 := time.Now()
		if err := b.Rejoin(); err != nil {
			return err
		}
		row(500, "full copy", 0, float64(time.Since(t0).Microseconds()))
	}
	fmt.Println("\nReads cost the same as a single server; writes pay one companion")
	fmt.Println("round. Recovery replays only the outage's intentions unless the")
	fmt.Println("list was lost, in which case the §4 'compare notes' full copy runs.")
	return nil
}

// runE9 compares crash recovery: the optimistic service resumes with
// zero repair (clients redo through a sibling), while the locking
// baseline must replay its intentions journal and clear its lock table,
// with work proportional to what was in flight.
func runE9() error {
	fmt.Println("\n(a) Optimistic service: server crash with an update in flight:")
	header("metric", "value")
	{
		cluster, err := core.NewCluster(core.Config{Servers: 2, DiskBlocks: 1 << 18, BlockSize: 4096})
		if err != nil {
			return err
		}
		cl := cluster.Client()
		fcap, err := cl.CreateFile([]byte("base"))
		if err != nil {
			return err
		}
		v, err := cl.Update(fcap, client.UpdateOpts{})
		if err != nil {
			return err
		}
		if err := v.Write(page.RootPath, []byte("in-flight")); err != nil {
			return err
		}
		t0 := time.Now()
		cluster.CrashServer(0)
		// Zero repair: the next operation is immediately served.
		redo, err := cl.Update(fcap, client.UpdateOpts{})
		if err != nil {
			return err
		}
		if err := redo.Write(page.RootPath, []byte("redone")); err != nil {
			return err
		}
		if err := redo.Commit(); err != nil {
			return err
		}
		row("rollbacks", 0)
		row("locks cleared", 0)
		row("intentions redone", 0)
		row("crash->redo committed µs", float64(time.Since(t0).Microseconds()))
	}

	fmt.Println("\n(b) Locking baseline: recovery work grows with in-flight state:")
	header("journal recs", "locks", "redone", "cleared", "recover µs")
	for _, n := range []int{8, 64, 512} {
		d := disk.MustNew(disk.Geometry{Blocks: 1 << 16, BlockSize: 4096})
		st := lockfs.New(block.NewServer(d), 1)
		f, err := st.CreateFile(64)
		if err != nil {
			return err
		}
		if err := st.FreezeMidCommit(f, n); err != nil {
			return err
		}
		t0 := time.Now()
		rep := st.Recover()
		row(n, 1, rep.IntentionsRedone, rep.LocksCleared,
			float64(time.Since(t0).Microseconds()))
	}
	fmt.Println("\nThe optimistic file system is consistent at every instant: after a")
	fmt.Println("crash there is nothing to roll back, no locks to clear and no")
	fmt.Println("intentions to carry out (§3.1) — the client merely redoes its update.")
	return nil
}

// runFig2 prints a system tree: nested files, the 'tree of trees'.
func runFig2() error {
	srv, err := newService()
	if err != nil {
		return err
	}
	cCap, err := srv.CreateFile([]byte("file C (super)"))
	if err != nil {
		return err
	}
	v, err := srv.CreateVersion(cCap, server.CreateVersionOpts{})
	if err != nil {
		return err
	}
	if _, err := srv.CreateSubFile(v, page.RootPath, 0, []byte("file A")); err != nil {
		return err
	}
	bCap, err := srv.CreateSubFile(v, page.RootPath, 1, []byte("file B"))
	if err != nil {
		return err
	}
	if err := srv.Commit(v); err != nil {
		return err
	}
	// Give file B a child page of its own.
	bv, err := srv.CreateVersion(bCap, server.CreateVersionOpts{})
	if err != nil {
		return err
	}
	if err := srv.InsertPage(bv, page.RootPath, 0, []byte("page in B")); err != nil {
		return err
	}
	if err := srv.Commit(bv); err != nil {
		return err
	}

	fmt.Println("\nfile C is a super-file; files A and B are sub-files of C (Fig. 2):")
	root, err := srv.CurrentVersion(cCap)
	if err != nil {
		return err
	}
	return printTree(srv.Store(), root, "", true)
}

// printTree renders a page tree, marking version pages (sub-file roots)
// and following sub-file commit chains to their current versions.
func printTree(st *version.Store, blk block.Num, indent string, isRoot bool) error {
	cur, err := occ.Current(st, blk)
	if err == nil {
		blk = cur
	}
	pg, err := st.ReadPage(blk)
	if err != nil {
		return err
	}
	kind := "page"
	if pg.IsVersion {
		kind = "version page (file root)"
	}
	fmt.Printf("%s%s blk=%d data=%q\n", indent, kind, blk, trim(pg.Data))
	for i, r := range pg.Refs {
		if r.IsNil() {
			fmt.Printf("%s  [%d] hole\n", indent, i)
			continue
		}
		if err := printTree(st, r.Block, indent+"  ", false); err != nil {
			return err
		}
	}
	return nil
}

// runFig4 prints the family tree of a file: the committed chain with its
// base and commit references, plus uncommitted versions hanging off it.
func runFig4() error {
	srv, err := newService()
	if err != nil {
		return err
	}
	fcap, err := srv.CreateFile([]byte("v0"))
	if err != nil {
		return err
	}
	for i := 1; i <= 3; i++ {
		v, _ := srv.CreateVersion(fcap, server.CreateVersionOpts{})
		if err := srv.WritePage(v, page.RootPath, []byte(fmt.Sprintf("v%d", i))); err != nil {
			return err
		}
		if err := srv.Commit(v); err != nil {
			return err
		}
	}
	// Two uncommitted versions based on the current one.
	u1, err := srv.CreateVersion(fcap, server.CreateVersionOpts{})
	if err != nil {
		return err
	}
	if err := srv.WritePage(u1, page.RootPath, []byte("draft-a")); err != nil {
		return err
	}
	u2, err := srv.CreateVersion(fcap, server.CreateVersionOpts{})
	if err != nil {
		return err
	}
	if err := srv.WritePage(u2, page.RootPath, []byte("draft-b")); err != nil {
		return err
	}

	hist, err := srv.History(fcap)
	if err != nil {
		return err
	}
	fmt.Println("\ncommitted chain (oldest -> current), doubly linked (Fig. 4):")
	for i, root := range hist {
		vp, err := srv.Store().ReadPage(root)
		if err != nil {
			return err
		}
		tag := ""
		if i == len(hist)-1 {
			tag = "   <- current (commit ref nil)"
		}
		fmt.Printf("  blk %-4d base<-%-4d commit->%-4d data=%q%s\n",
			root, vp.BaseRef, vp.CommitRef, trim(vp.Data), tag)
	}
	fmt.Println("uncommitted versions attached by their base references:")
	for _, u := range []block.Num{mustRoot(srv, u1), mustRoot(srv, u2)} {
		vp, err := srv.Store().ReadPage(u)
		if err != nil {
			return err
		}
		fmt.Printf("  blk %-4d base<-%-4d (no commit ref) data=%q\n",
			u, vp.BaseRef, trim(vp.Data))
	}
	return nil
}

// mustRoot resolves a version capability to its root block.
func mustRoot(srv *server.Server, vcap capability.Capability) block.Num {
	root, err := srv.VersionRoot(vcap)
	if err != nil {
		panic(err)
	}
	return root
}

// trim shortens data for display.
func trim(b []byte) string {
	s := string(b)
	if len(s) > 24 {
		return s[:24] + "..."
	}
	return s
}
