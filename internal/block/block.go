// Package block implements the paper's block server (§4): the bottom of
// the storage hierarchy, managing fixed-size blocks of data.
//
// The block service implements "as a minimum commands to allocate,
// deallocate, read and write fixed size blocks of data", with three
// further properties the file service depends on:
//
//   - Protection: a block allocated by account A cannot be touched by
//     account B without A's permission. Accounts are identified by
//     capability; the per-block owner is recorded at allocation.
//   - Atomic writes: "Writing a block must be an atomic action, with an
//     acknowledgement that is returned after the block has been stored on
//     disk. This property is vital for the implementation of atomic
//     update on files."
//   - A simple locking facility: the file service realises its commit
//     critical section by "lock and read a block, examine and modify it,
//     then write and unlock the block again". TestAndSet-style semantics
//     are provided through Lock/Unlock plus the composite LockRead and
//     WriteUnlock operations.
//
// Block servers also support the §4 recovery operation: "given an account
// number, returns a list of block numbers owned by that account", which a
// file server uses with its own redundancy information to rebuild its
// file system after a severe crash.
package block

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/disk"
)

// Num is a block number. The paper packs block numbers into 28 bits next
// to 4 flag bits; NumBits and MaxNum enforce that bound here so the page
// layer's reference encoding is faithful.
type Num uint32

// NumBits is the width of a block number (the paper's 28 bits).
const NumBits = 28

// MaxNum is the largest representable block number.
const MaxNum Num = 1<<NumBits - 1

// NilNum is the reserved "no block" value. Block 0 is never allocated so
// that nil references are unambiguous, mirroring the paper's nil base and
// commit references.
const NilNum Num = 0

// Errors returned by the block service.
var (
	// ErrNoSpace reports that the underlying disk is full.
	ErrNoSpace = errors.New("block: no space")
	// ErrNotAllocated reports an operation on a free block.
	ErrNotAllocated = errors.New("block: not allocated")
	// ErrNotOwner reports an access by an account that does not own the
	// block.
	ErrNotOwner = errors.New("block: not owner")
	// ErrLocked reports a Lock on an already locked block.
	ErrLocked = errors.New("block: locked")
	// ErrNotLocked reports an Unlock of an unlocked block.
	ErrNotLocked = errors.New("block: not locked")
)

// Account identifies a block-server client for protection and recovery.
// The file servers each hold one account capability.
type Account uint32

// Store is the interface the file service layers consume. Both the plain
// Server here and the paired stable-storage servers satisfy it.
type Store interface {
	// BlockSize returns the fixed block payload size in bytes.
	BlockSize() int
	// Alloc allocates a fresh block owned by account, writes data into
	// it atomically, and returns its number.
	Alloc(account Account, data []byte) (Num, error)
	// Free releases a block.
	Free(account Account, n Num) error
	// Read returns the contents of block n.
	Read(account Account, n Num) ([]byte, error)
	// Write replaces the contents of block n atomically.
	Write(account Account, n Num, data []byte) error
	// Lock acquires the block's mutual-exclusion bit; it fails with
	// ErrLocked if already held. Locks are advisory and scoped to the
	// commit critical section (§5.2).
	Lock(account Account, n Num) error
	// Unlock releases the lock bit.
	Unlock(account Account, n Num) error
	// Recover lists all block numbers owned by account, for crash
	// recovery of a file server's tables.
	Recover(account Account) ([]Num, error)
}

// Server is a single block server backed by one simulated disk.
type Server struct {
	d *disk.Disk

	mu     sync.Mutex
	owner  map[Num]Account
	locked map[Num]bool
	// nextHint speeds allocation scans; correctness does not depend on it.
	nextHint Num

	stats Stats
}

// Stats counts operations on a Server.
type Stats struct {
	Allocs, Frees, Reads, Writes, Locks, Unlocks uint64
	LockConflicts                                uint64
}

// NewServer creates a block server on d. Block 0 is reserved as NilNum.
func NewServer(d *disk.Disk) *Server {
	return &Server{
		d:        d,
		owner:    make(map[Num]Account),
		locked:   make(map[Num]bool),
		nextHint: 1,
	}
}

// BlockSize implements Store.
func (s *Server) BlockSize() int { return s.d.Geometry().BlockSize }

// Capacity returns the number of allocatable blocks (excluding NilNum).
func (s *Server) Capacity() int { return s.d.Geometry().Blocks - 1 }

// InUse returns the number of currently allocated blocks.
func (s *Server) InUse() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.owner)
}

// Stats returns a snapshot of the operation counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Disk exposes the underlying disk for fault injection in tests and the
// failure-mode benchmarks.
func (s *Server) Disk() *disk.Disk { return s.d }

// allocNum reserves the next free block number. Caller holds s.mu.
func (s *Server) allocNum(account Account) (Num, error) {
	total := Num(s.d.Geometry().Blocks)
	if total > MaxNum {
		total = MaxNum
	}
	for i := Num(0); i < total; i++ {
		n := (s.nextHint + i) % total
		if n == NilNum {
			continue
		}
		if _, used := s.owner[n]; !used {
			s.owner[n] = account
			s.nextHint = n + 1
			return n, nil
		}
	}
	return NilNum, ErrNoSpace
}

// checkOwner verifies account owns n. Caller holds s.mu.
func (s *Server) checkOwner(account Account, n Num) error {
	own, ok := s.owner[n]
	if !ok {
		return fmt.Errorf("block %d: %w", n, ErrNotAllocated)
	}
	if own != account {
		return fmt.Errorf("block %d owned by %d, access by %d: %w", n, own, account, ErrNotOwner)
	}
	return nil
}

// Alloc implements Store.
func (s *Server) Alloc(account Account, data []byte) (Num, error) {
	s.mu.Lock()
	n, err := s.allocNum(account)
	if err != nil {
		s.mu.Unlock()
		return NilNum, err
	}
	s.stats.Allocs++
	s.mu.Unlock()

	if err := s.d.Write(int(n), data); err != nil {
		s.mu.Lock()
		delete(s.owner, n)
		s.mu.Unlock()
		return NilNum, fmt.Errorf("block %d: %w", n, err)
	}
	return n, nil
}

// Claim allocates a *specific* block number for account, failing if it is
// already taken. The stable-storage companion protocol uses Claim to
// mirror its partner's allocation choice; a failed Claim is exactly the
// paper's §4 "allocate collision".
func (s *Server) Claim(account Account, n Num) error {
	if n == NilNum || int(n) >= s.d.Geometry().Blocks {
		return fmt.Errorf("block %d: %w", n, disk.ErrBadBlock)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, used := s.owner[n]; used {
		return fmt.Errorf("block %d: already allocated", n)
	}
	s.owner[n] = account
	s.stats.Allocs++
	return nil
}

// Free implements Store.
func (s *Server) Free(account Account, n Num) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkOwner(account, n); err != nil {
		return err
	}
	delete(s.owner, n)
	delete(s.locked, n)
	s.stats.Frees++
	return nil
}

// Read implements Store.
func (s *Server) Read(account Account, n Num) ([]byte, error) {
	s.mu.Lock()
	if err := s.checkOwner(account, n); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.stats.Reads++
	s.mu.Unlock()
	return s.d.Read(int(n))
}

// Write implements Store.
func (s *Server) Write(account Account, n Num, data []byte) error {
	s.mu.Lock()
	if err := s.checkOwner(account, n); err != nil {
		s.mu.Unlock()
		return err
	}
	s.stats.Writes++
	s.mu.Unlock()
	return s.d.Write(int(n), data)
}

// Lock implements Store. A failed Lock is the §5.2 signal that another
// server is inside the commit critical section for this version page.
func (s *Server) Lock(account Account, n Num) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkOwner(account, n); err != nil {
		return err
	}
	if s.locked[n] {
		s.stats.LockConflicts++
		return fmt.Errorf("block %d: %w", n, ErrLocked)
	}
	s.locked[n] = true
	s.stats.Locks++
	return nil
}

// Unlock implements Store.
func (s *Server) Unlock(account Account, n Num) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkOwner(account, n); err != nil {
		return err
	}
	if !s.locked[n] {
		return fmt.Errorf("block %d: %w", n, ErrNotLocked)
	}
	delete(s.locked, n)
	s.stats.Unlocks++
	return nil
}

// Recover implements Store: the §4 recovery scan.
func (s *Server) Recover(account Account) ([]Num, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Num
	for n, a := range s.owner {
		if a == account {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// ClearLocks drops every lock bit; used when a file server restarts after
// a crash (lock bits are volatile commit-section state, not file state).
func (s *Server) ClearLocks() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.locked = make(map[Num]bool)
}

var _ Store = (*Server)(nil)

// Restore rebuilds the allocation table from an owner map, as a block
// server does after a crash from its companion's notes plus client
// redundancy data. Existing state is replaced.
func (s *Server) Restore(owner map[Num]Account) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.owner = make(map[Num]Account, len(owner))
	for n, a := range owner {
		s.owner[n] = a
	}
	s.locked = make(map[Num]bool)
}

// Owners returns a copy of the allocation table, for companion recovery.
func (s *Server) Owners() map[Num]Account {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[Num]Account, len(s.owner))
	for n, a := range s.owner {
		out[n] = a
	}
	return out
}

// WithLock runs fn while holding the lock on block n, implementing the
// §5.2 critical section "lock and read a block, examine and modify it,
// then write and unlock the block again" as a convenience. fn receives
// the block contents and returns the new contents (nil to skip the
// write-back).
func WithLock(st Store, account Account, n Num, fn func(data []byte) ([]byte, error)) error {
	if err := st.Lock(account, n); err != nil {
		return err
	}
	defer func() {
		// Unlock failure after a successful body means the store lost
		// the lock table (crash); the caller's retry logic handles it.
		_ = st.Unlock(account, n)
	}()
	data, err := st.Read(account, n)
	if err != nil {
		return err
	}
	out, err := fn(data)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return st.Write(account, n, out)
}
