// Package trace is the file service's zero-dependency distributed
// tracing layer. A trace is a tree of spans describing where one client
// operation spent its time as it crossed the stack: client op → server
// command dispatch → OCC validate/commit → per-shard fan-out legs →
// mirror halves → segstore lane append+fsync — including hops over the
// bespoke RPC to remote block servers.
//
// The design mirrors the system's own philosophy: no third-party
// dependencies, no goroutine-local magic, and a hot path that costs
// nothing when tracing is off. A Context is an explicit value threaded
// through call chains (and, across the wire, through the rpc.Message
// trailer); when the trace is not sampled the Context is the zero value,
// Start returns a nil *Span, and every method on both is a no-op — the
// untraced hot path allocates nothing.
//
// # Span flow
//
// Spans always flow *up* toward the trace root. In one process they
// record directly into the root's collector. Across an RPC hop the
// callee runs its spans in a local collector (Join) and returns the
// encoded records in the reply trailer; the caller adopts them into its
// own collector (Span.Adopt). The process that minted the root — the
// client — therefore ends up holding the complete tree, finalises it
// into its Tracer's ring, and (via the OnTrace hook) can report it to a
// server so operators see whole cross-machine traces on one
// /debug/traces endpoint.
package trace

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// FlagSampled marks a context whose trace is being recorded; it is the
// only flag bit defined so far. Unknown bits propagate untouched.
const FlagSampled uint8 = 1 << 0

// ContextWireLen is the encoded size of a Context in the rpc trailer:
// trace ID (8) || parent span ID (8) || flags (1).
const ContextWireLen = 17

// MaxWireSpans bounds the encoded span records one reply trailer may
// carry; whole records past the cap are dropped (never truncated
// mid-record) and counted in the collector.
const MaxWireSpans = 2048

// Context identifies a position in a trace: the trace, the span that is
// the parent of whatever work comes next, and the flags. The zero value
// means "not traced" and makes every derived operation free.
type Context struct {
	TraceID uint64
	SpanID  uint64
	Flags   uint8

	col *collector
}

// Sampled reports whether work under this context should record spans.
func (c Context) Sampled() bool { return c.Flags&FlagSampled != 0 }

// local reports whether the context is attached to an in-process
// collector (false for a context freshly decoded off the wire).
func (c Context) local() bool { return c.col != nil }

// Start opens a child span under c. It returns the span and the derived
// context for work nested inside it. On an unsampled or wire-detached
// context it returns (nil, Context{}): the nil *Span is safe to use and
// records nothing.
func (c Context) Start(layer, name string) (*Span, Context) {
	if !c.Sampled() || c.col == nil {
		return nil, Context{}
	}
	s := &Span{
		col:    c.col,
		id:     c.col.nextSpanID(),
		parent: c.SpanID,
		layer:  layer,
		name:   name,
		start:  time.Now(),
	}
	return s, Context{TraceID: c.TraceID, SpanID: s.id, Flags: c.Flags, col: c.col}
}

// Wire returns the 17-byte wire form of c for the rpc trailer.
func (c Context) Wire() [ContextWireLen]byte {
	var b [ContextWireLen]byte
	binary.BigEndian.PutUint64(b[0:8], c.TraceID)
	binary.BigEndian.PutUint64(b[8:16], c.SpanID)
	b[16] = c.Flags
	return b
}

// ContextFromWire rebuilds a Context from its wire form. The result is
// wire-detached: Join attaches a collector before spans can start.
func ContextFromWire(b []byte) Context {
	if len(b) < ContextWireLen {
		return Context{}
	}
	return Context{
		TraceID: binary.BigEndian.Uint64(b[0:8]),
		SpanID:  binary.BigEndian.Uint64(b[8:16]),
		Flags:   b[16],
	}
}

// Join attaches a context received from a peer to this process. If the
// context already has a local collector (the in-process transport passes
// the message by pointer) it is returned unchanged and finish returns
// nil. If it is sampled but wire-detached, a fresh collector is created:
// spans started under the returned context record into it, and finish
// encodes them for the reply trailer. An unsampled context yields no-ops.
func Join(c Context) (Context, func() []byte) {
	if !c.Sampled() || c.col != nil {
		return c, func() []byte { return nil }
	}
	col := &collector{traceID: c.TraceID, spanIDs: rand.Uint64() | 1}
	c.col = col
	return c, col.encodeAll
}

// SpanRecord is one completed span.
type SpanRecord struct {
	ID     uint64
	Parent uint64
	Layer  string
	Name   string
	Start  time.Time
	Dur    time.Duration
	Err    string // empty on success
}

// Span is an open span. A nil *Span is valid and inert.
type Span struct {
	col    *collector
	id     uint64
	parent uint64
	layer  string
	name   string
	start  time.Time
	ended  atomic.Bool
}

// End closes the span, recording err (nil for success). Ending twice is
// harmless; the first wins.
func (s *Span) End(err error) {
	if s == nil || s.ended.Swap(true) {
		return
	}
	rec := SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Layer:  s.layer,
		Name:   s.name,
		Start:  s.start,
		Dur:    time.Since(s.start),
	}
	if err != nil {
		rec.Err = err.Error()
	}
	s.col.add(rec)
	s.col.maybeFinish(s)
}

// Adopt merges span records returned by a peer (a reply trailer) into
// this span's trace. Undecodable input is dropped; tracing must never
// fail an operation.
func (s *Span) Adopt(encoded []byte) {
	if s == nil || len(encoded) == 0 {
		return
	}
	recs, _ := DecodeRecords(encoded)
	if len(recs) > 0 {
		s.col.addAll(recs)
	}
}

// collector accumulates the spans of one trace.
type collector struct {
	traceID uint64
	spanIDs uint64 // atomic; pre-seeded, odd so IDs never collide with 0

	mu      sync.Mutex
	spans   []SpanRecord
	dropped int

	// root and tracer are set only in the process that minted the trace:
	// when the root span ends, the trace finalises into the tracer.
	root   *Span
	tracer *Tracer
}

func (c *collector) nextSpanID() uint64 {
	return atomic.AddUint64(&c.spanIDs, 2)
}

func (c *collector) add(r SpanRecord) {
	c.mu.Lock()
	c.spans = append(c.spans, r)
	c.mu.Unlock()
}

func (c *collector) addAll(rs []SpanRecord) {
	c.mu.Lock()
	c.spans = append(c.spans, rs...)
	c.mu.Unlock()
}

// maybeFinish finalises the trace when the ending span is the local
// root and a tracer owns it.
func (c *collector) maybeFinish(s *Span) {
	c.mu.Lock()
	isRoot := c.root == s && c.tracer != nil
	var spans []SpanRecord
	if isRoot {
		spans = append([]SpanRecord(nil), c.spans...)
	}
	c.mu.Unlock()
	if isRoot {
		c.tracer.finish(&Trace{ID: c.traceID, Spans: spans})
	}
}

// encodeAll snapshots and encodes the collected records for a reply
// trailer, bounded by MaxWireSpans.
func (c *collector) encodeAll() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]byte, 0, 64*len(c.spans))
	for _, r := range c.spans {
		enc := appendRecord(nil, r)
		if len(out)+len(enc) > MaxWireSpans {
			c.dropped++
			continue
		}
		out = append(out, enc...)
	}
	return out
}

// Trace is one completed trace.
type Trace struct {
	ID    uint64
	Spans []SpanRecord
}

// Root returns the root span record (parent not present among the
// spans), or a zero record when the trace is empty.
func (t *Trace) Root() SpanRecord {
	ids := make(map[uint64]bool, len(t.Spans))
	for _, s := range t.Spans {
		ids[s.ID] = true
	}
	for _, s := range t.Spans {
		if !ids[s.Parent] {
			return s
		}
	}
	if len(t.Spans) > 0 {
		return t.Spans[0]
	}
	return SpanRecord{}
}

// Duration is the root span's duration.
func (t *Trace) Duration() time.Duration { return t.Root().Dur }

// Layers returns the distinct span layers in the trace, in first-seen
// order: the smoke test's "a commit trace covers ≥ N layers" check.
func (t *Trace) Layers() []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range t.Spans {
		if !seen[s.Layer] {
			seen[s.Layer] = true
			out = append(out, s.Layer)
		}
	}
	return out
}

// Tracer owns the sampling decision and the completed-trace ring.
type Tracer struct {
	// Slow, when positive, marks traces at least this long as slow:
	// they are kept in the slowest-N list and reported through OnSlow.
	Slow time.Duration
	// OnTrace, when set, is called with every completed trace (after it
	// is in the ring). The afs client uses it to report assembled traces
	// to a server's /debug/traces.
	OnTrace func(*Trace)
	// OnSlow, when set, is called for traces slower than Slow (the
	// afs-server logs these through slog with the trace ID attached).
	OnSlow func(*Trace)

	sample uint64 // sampling threshold in [0, 1<<63]; atomic
	seed   atomic.Uint64

	ring    []atomic.Pointer[Trace]
	ringPos atomic.Uint64

	slowMu  sync.Mutex
	slowest []*Trace
}

// slowestN bounds the slowest-traces list.
const slowestN = 32

// sampleScale maps a [0,1] ratio onto the uint64 threshold space.
const sampleScale = 1 << 62

// New creates a Tracer sampling the given ratio of roots ([0, 1]) into
// a ring of ringSize completed traces (minimum 16).
func New(sample float64, slow time.Duration, ringSize int) *Tracer {
	if ringSize < 16 {
		ringSize = 16
	}
	t := &Tracer{Slow: slow, ring: make([]atomic.Pointer[Trace], ringSize)}
	t.SetSample(sample)
	t.seed.Store(rand.Uint64() | 1)
	return t
}

// SetSample replaces the sampling ratio ([0, 1]).
func (t *Tracer) SetSample(ratio float64) {
	if ratio < 0 {
		ratio = 0
	}
	if ratio > 1 {
		ratio = 1
	}
	atomic.StoreUint64(&t.sample, uint64(ratio*float64(sampleScale)))
}

// sampled draws one sampling decision. A cheap xorshift on an atomic
// seed: no locks, no allocation, good enough for sampling.
func (t *Tracer) sampled() bool {
	thr := atomic.LoadUint64(&t.sample)
	if thr == 0 {
		return false
	}
	if thr >= sampleScale {
		return true
	}
	x := t.seed.Add(0x9e3779b97f4a7c15)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 29
	return x%sampleScale < thr
}

// Start mints a trace root if this operation is sampled, returning the
// root span and the context for nested work. When not sampled (or t is
// nil) it returns (nil, Context{}) without allocating.
func (t *Tracer) Start(layer, name string) (*Span, Context) {
	if t == nil || !t.sampled() {
		return nil, Context{}
	}
	col := &collector{
		traceID: rand.Uint64() | 1,
		spanIDs: rand.Uint64() | 1,
		tracer:  t,
	}
	s := &Span{
		col:   col,
		id:    col.nextSpanID(),
		layer: layer,
		name:  name,
		start: time.Now(),
	}
	col.root = s
	return s, Context{TraceID: col.traceID, SpanID: s.id, Flags: FlagSampled, col: col}
}

// finish lands a completed trace in the ring and the slow list.
func (t *Tracer) finish(tr *Trace) {
	t.Ingest(tr)
	if t.OnTrace != nil {
		t.OnTrace(tr)
	}
}

// Ingest adds an externally assembled trace (e.g. one reported by a
// client over CmdTraceReport) to the ring and slow list.
func (t *Tracer) Ingest(tr *Trace) {
	if t == nil || tr == nil || len(tr.Spans) == 0 {
		return
	}
	// Lock-free ring write: claim a slot, publish the pointer.
	i := t.ringPos.Add(1) - 1
	t.ring[i%uint64(len(t.ring))].Store(tr)

	if t.Slow > 0 && tr.Duration() >= t.Slow {
		t.noteSlow(tr)
		if t.OnSlow != nil {
			t.OnSlow(tr)
		}
	}
}

func (t *Tracer) noteSlow(tr *Trace) {
	t.slowMu.Lock()
	defer t.slowMu.Unlock()
	t.slowest = append(t.slowest, tr)
	sort.Slice(t.slowest, func(i, j int) bool {
		return t.slowest[i].Duration() > t.slowest[j].Duration()
	})
	if len(t.slowest) > slowestN {
		t.slowest = t.slowest[:slowestN]
	}
}

// Recent returns up to n most recently completed traces, newest first.
func (t *Tracer) Recent(n int) []*Trace {
	if t == nil {
		return nil
	}
	pos := t.ringPos.Load()
	size := uint64(len(t.ring))
	if n <= 0 || uint64(n) > size {
		n = len(t.ring)
	}
	out := make([]*Trace, 0, n)
	for k := uint64(0); k < size && len(out) < n; k++ {
		if pos < k+1 {
			break
		}
		if tr := t.ring[(pos-k-1)%size].Load(); tr != nil {
			out = append(out, tr)
		}
	}
	return out
}

// Slowest returns the slowest traces seen, slowest first.
func (t *Tracer) Slowest() []*Trace {
	if t == nil {
		return nil
	}
	t.slowMu.Lock()
	defer t.slowMu.Unlock()
	return append([]*Trace(nil), t.slowest...)
}

// --- span record wire encoding ---
//
//	record := id(8) parent(8) startUnixNano(8) durNano(8)
//	          layerLen(1) layer nameLen(1) name errLen(2) err

// appendRecord appends the wire form of r.
func appendRecord(dst []byte, r SpanRecord) []byte {
	layer, name, errs := r.Layer, r.Name, r.Err
	if len(layer) > 255 {
		layer = layer[:255]
	}
	if len(name) > 255 {
		name = name[:255]
	}
	if len(errs) > 512 {
		errs = errs[:512]
	}
	dst = binary.BigEndian.AppendUint64(dst, r.ID)
	dst = binary.BigEndian.AppendUint64(dst, r.Parent)
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.Start.UnixNano()))
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.Dur))
	dst = append(dst, byte(len(layer)))
	dst = append(dst, layer...)
	dst = append(dst, byte(len(name)))
	dst = append(dst, name...)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(errs)))
	dst = append(dst, errs...)
	return dst
}

// EncodeRecords encodes records for the wire (a reply trailer or a
// CmdTraceReport payload).
func EncodeRecords(rs []SpanRecord) []byte {
	var out []byte
	for _, r := range rs {
		out = appendRecord(out, r)
	}
	return out
}

// DecodeRecords parses encoded span records, returning those that
// decode cleanly plus an error describing the first malformed one.
func DecodeRecords(b []byte) ([]SpanRecord, error) {
	var out []SpanRecord
	for len(b) > 0 {
		if len(b) < 34 {
			return out, fmt.Errorf("trace: truncated span record (%d bytes left)", len(b))
		}
		var r SpanRecord
		r.ID = binary.BigEndian.Uint64(b[0:8])
		r.Parent = binary.BigEndian.Uint64(b[8:16])
		r.Start = time.Unix(0, int64(binary.BigEndian.Uint64(b[16:24])))
		r.Dur = time.Duration(binary.BigEndian.Uint64(b[24:32]))
		b = b[32:]
		ln := int(b[0])
		if len(b) < 1+ln+1 {
			return out, fmt.Errorf("trace: truncated span layer")
		}
		r.Layer = string(b[1 : 1+ln])
		b = b[1+ln:]
		ln = int(b[0])
		if len(b) < 1+ln+2 {
			return out, fmt.Errorf("trace: truncated span name")
		}
		r.Name = string(b[1 : 1+ln])
		b = b[1+ln:]
		ln = int(binary.BigEndian.Uint16(b[0:2]))
		if len(b) < 2+ln {
			return out, fmt.Errorf("trace: truncated span error")
		}
		r.Err = string(b[2 : 2+ln])
		b = b[2+ln:]
		out = append(out, r)
	}
	return out, nil
}

// EncodeTrace packs a complete trace (ID + records) for CmdTraceReport.
func EncodeTrace(tr *Trace) []byte {
	out := binary.BigEndian.AppendUint64(nil, tr.ID)
	return append(out, EncodeRecords(tr.Spans)...)
}

// DecodeTrace unpacks EncodeTrace's layout.
func DecodeTrace(b []byte) (*Trace, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("trace: report of %d bytes", len(b))
	}
	recs, err := DecodeRecords(b[8:])
	if err != nil {
		return nil, err
	}
	return &Trace{ID: binary.BigEndian.Uint64(b[0:8]), Spans: recs}, nil
}
