package capability

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestNewPortNonNil(t *testing.T) {
	for i := 0; i < 100; i++ {
		if p := NewPort(); p.IsNil() {
			t.Fatal("NewPort returned nil port")
		}
	}
}

func TestNewPortDistinct(t *testing.T) {
	seen := make(map[Port]bool)
	for i := 0; i < 1000; i++ {
		p := NewPort()
		if seen[p] {
			t.Fatalf("duplicate port %v after %d draws", p, i)
		}
		seen[p] = true
	}
}

func TestPortPublicDeterministic(t *testing.T) {
	p := NewPort()
	if p.Public() != p.Public() {
		t.Fatal("Public not deterministic")
	}
	if p.Public() == p {
		t.Fatal("Public should differ from private port")
	}
}

func TestPortPublicOneWay(t *testing.T) {
	// Two distinct private ports must map to distinct public ports
	// (collision would break service identity).
	a, b := NewPort(), NewPort()
	if a.Public() == b.Public() {
		t.Fatal("public port collision")
	}
}

func TestPortString(t *testing.T) {
	if got := Port(0xabcdef123456).String(); got != "abcdef123456" {
		t.Fatalf("String = %q, want abcdef123456", got)
	}
}

func TestRightsHas(t *testing.T) {
	r := RightRead | RightWrite
	if !r.Has(RightRead) || !r.Has(RightWrite) || !r.Has(RightRead|RightWrite) {
		t.Fatal("Has missed granted rights")
	}
	if r.Has(RightCommit) || r.Has(RightRead|RightCommit) {
		t.Fatal("Has granted missing rights")
	}
	if !r.Has(0) {
		t.Fatal("Has(0) must always be true")
	}
}

func TestRightsString(t *testing.T) {
	cases := []struct {
		r    Rights
		want string
	}{
		{0, "-"},
		{RightRead, "r"},
		{RightRead | RightWrite | RightCreate, "rwc"},
		{RightsAll, "rwcmda"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Rights(%08b).String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := NewFactory(NewPort().Public())
	c := f.Register(42)
	enc := c.Encode(nil)
	if len(enc) != EncodedLen {
		t.Fatalf("encoded length %d, want %d", len(enc), EncodedLen)
	}
	got, rest, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("rest = %d bytes, want 0", len(rest))
	}
	if got != c {
		t.Fatalf("round trip mismatch: %v != %v", got, c)
	}
}

func TestDecodeShort(t *testing.T) {
	if _, _, err := Decode(make([]byte, EncodedLen-1)); err == nil {
		t.Fatal("Decode accepted short input")
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	// Any capability with a 24-bit object and 48-bit check round-trips.
	prop := func(port uint64, object uint32, rights uint8, check uint64) bool {
		c := Capability{
			Port:   Port(port & portMask),
			Object: object & 0xffffff,
			Rights: Rights(rights),
			Check:  check & portMask,
		}
		got, rest, err := Decode(c.Encode(nil))
		return err == nil && len(rest) == 0 && got == c
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFactoryVerify(t *testing.T) {
	f := NewFactory(NewPort().Public())
	c := f.Register(7)
	if err := f.Verify(c, RightsAll); err != nil {
		t.Fatalf("owner capability rejected: %v", err)
	}
}

func TestFactoryVerifyForged(t *testing.T) {
	f := NewFactory(NewPort().Public())
	c := f.Register(7)

	forged := c
	forged.Check++
	if err := f.Verify(forged, 0); !errors.Is(err, ErrBadCheck) {
		t.Fatalf("forged check accepted: %v", err)
	}

	widened := c
	widened.Rights = RightsAll
	widened.Object = 8 // unknown object
	if err := f.Verify(widened, 0); !errors.Is(err, ErrBadCheck) {
		t.Fatalf("unknown object accepted: %v", err)
	}
}

func TestFactoryRightsWideningDetected(t *testing.T) {
	f := NewFactory(NewPort().Public())
	owner := f.Register(7)
	narrow, err := f.Restrict(owner, RightRead)
	if err != nil {
		t.Fatal(err)
	}
	// Client flips rights bits without the secret: check must fail.
	widened := narrow
	widened.Rights = RightsAll
	if err := f.Verify(widened, 0); !errors.Is(err, ErrBadCheck) {
		t.Fatalf("widened capability accepted: %v", err)
	}
}

func TestFactoryRestrict(t *testing.T) {
	f := NewFactory(NewPort().Public())
	owner := f.Register(9)
	ro, err := f.Restrict(owner, RightRead)
	if err != nil {
		t.Fatal(err)
	}
	if ro.Rights != RightRead {
		t.Fatalf("rights = %v, want read only", ro.Rights)
	}
	if err := f.Verify(ro, RightRead); err != nil {
		t.Fatalf("restricted capability invalid: %v", err)
	}
	if err := f.Verify(ro, RightWrite); !errors.Is(err, ErrRights) {
		t.Fatalf("restricted capability conveyed write: %v", err)
	}
}

func TestFactoryRestrictRequiresValidInput(t *testing.T) {
	f := NewFactory(NewPort().Public())
	owner := f.Register(9)
	bad := owner
	bad.Check ^= 1
	if _, err := f.Restrict(bad, RightRead); !errors.Is(err, ErrBadCheck) {
		t.Fatalf("Restrict accepted forged capability: %v", err)
	}
}

func TestFactoryForget(t *testing.T) {
	f := NewFactory(NewPort().Public())
	c := f.Register(3)
	f.Forget(3)
	if err := f.Verify(c, 0); !errors.Is(err, ErrBadCheck) {
		t.Fatalf("capability survived Forget: %v", err)
	}
}

func TestFactoriesIndependent(t *testing.T) {
	f1 := NewFactory(NewPort().Public())
	f2 := NewFactory(NewPort().Public())
	c := f1.Register(5)
	f2.Register(5)
	if err := f2.Verify(c, 0); !errors.Is(err, ErrBadCheck) {
		t.Fatalf("capability from f1 accepted by f2: %v", err)
	}
}

func TestNilCapability(t *testing.T) {
	if !Nil.IsNil() {
		t.Fatal("Nil.IsNil() = false")
	}
	if Nil.String() != "cap(nil)" {
		t.Fatalf("Nil.String() = %q", Nil.String())
	}
	f := NewFactory(NewPort().Public())
	c := f.Register(1)
	if c.IsNil() {
		t.Fatal("registered capability is nil")
	}
}
