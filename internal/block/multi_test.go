package block

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/capability"
	"repro/internal/disk"
	"repro/internal/rpc"
)

// opaque hides a Store's native multi operations: its method set is
// exactly Store, so the package-level helpers must take the loop
// fallback. The MultiStore contract requires the fallback and any
// native implementation to be indistinguishable.
type opaque struct{ Store }

func newMulti(t *testing.T, blocks, blockSize int) *Server {
	t.Helper()
	return NewServer(disk.MustNew(disk.Geometry{Blocks: blocks, BlockSize: blockSize}))
}

// eachWay runs fn against a native MultiStore and against the same
// backend wrapped so only the adapter path is available.
func eachWay(t *testing.T, fn func(t *testing.T, st Store)) {
	t.Helper()
	t.Run("native", func(t *testing.T) {
		srv := newMulti(t, 128, 256)
		if _, ok := Store(srv).(MultiStore); !ok {
			t.Fatal("Server should be a native MultiStore")
		}
		fn(t, srv)
	})
	t.Run("adapter", func(t *testing.T) {
		srv := newMulti(t, 128, 256)
		st := opaque{srv}
		if _, ok := Store(st).(MultiStore); ok {
			t.Fatal("opaque wrapper must not expose MultiStore")
		}
		fn(t, st)
	})
}

func TestMultiRoundTrip(t *testing.T) {
	eachWay(t, func(t *testing.T, st Store) {
		payloads := make([][]byte, 9)
		for i := range payloads {
			payloads[i] = []byte(fmt.Sprintf("page-%d", i))
		}
		ns, err := AllocMulti(st, 1, payloads)
		if err != nil {
			t.Fatal(err)
		}
		if len(ns) != len(payloads) {
			t.Fatalf("allocated %d blocks", len(ns))
		}
		got, err := ReadMulti(st, 1, ns)
		if err != nil {
			t.Fatal(err)
		}
		for i := range payloads {
			if !bytes.Equal(got[i][:len(payloads[i])], payloads[i]) {
				t.Fatalf("block %d = %q", i, got[i][:len(payloads[i])])
			}
		}
		next := make([][]byte, len(ns))
		for i := range next {
			next[i] = []byte(fmt.Sprintf("rewrite-%d", i))
		}
		if err := WriteMulti(st, 1, ns, next); err != nil {
			t.Fatal(err)
		}
		got, _ = ReadMulti(st, 1, ns)
		for i := range next {
			if !bytes.Equal(got[i][:len(next[i])], next[i]) {
				t.Fatalf("block %d after rewrite = %q", i, got[i][:len(next[i])])
			}
		}
		if err := FreeMulti(st, 1, ns); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadMulti(st, 1, ns[:1]); !errors.Is(err, ErrNotAllocated) {
			t.Fatalf("read after free: %v", err)
		}
	})
}

func TestMultiPartialFailureContract(t *testing.T) {
	eachWay(t, func(t *testing.T, st Store) {
		mine, err := AllocMulti(st, 1, [][]byte{[]byte("a"), []byte("b"), []byte("c")})
		if err != nil {
			t.Fatal(err)
		}
		theirs, err := st.Alloc(2, []byte("foreign"))
		if err != nil {
			t.Fatal(err)
		}

		// WriteMulti: the foreign block in the middle fails, its
		// neighbours are written anyway, and the first error surfaces.
		ns := []Num{mine[0], theirs, mine[2]}
		data := [][]byte{[]byte("new-0"), []byte("nope"), []byte("new-2")}
		if err := WriteMulti(st, 1, ns, data); !errors.Is(err, ErrNotOwner) {
			t.Fatalf("write err = %v, want ErrNotOwner", err)
		}
		for _, i := range []int{0, 2} {
			got, err := st.Read(1, mine[i])
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got[:5], data[func() int {
				if i == 0 {
					return 0
				}
				return 2
			}()][:5]) {
				t.Fatalf("block %d not written through partial failure", i)
			}
		}
		if got, _ := st.Read(2, theirs); !bytes.Equal(got[:7], []byte("foreign")) {
			t.Fatal("foreign block modified")
		}

		// ReadMulti: all-or-nothing.
		if _, err := ReadMulti(st, 1, []Num{mine[0], theirs}); !errors.Is(err, ErrNotOwner) {
			t.Fatalf("read err = %v, want ErrNotOwner", err)
		}

		// FreeMulti: the bad block reports, the rest are freed.
		if err := FreeMulti(st, 1, []Num{mine[0], theirs, mine[2]}); !errors.Is(err, ErrNotOwner) {
			t.Fatalf("free err = %v, want ErrNotOwner", err)
		}
		if _, err := st.Read(1, mine[0]); !errors.Is(err, ErrNotAllocated) {
			t.Fatalf("mine[0] survived FreeMulti: %v", err)
		}
		if _, err := st.Read(1, mine[2]); !errors.Is(err, ErrNotAllocated) {
			t.Fatalf("mine[2] survived FreeMulti: %v", err)
		}
		if _, err := st.Read(2, theirs); err != nil {
			t.Fatalf("foreign block freed by account 1: %v", err)
		}
	})
}

func TestAllocMultiRollsBackOnFailure(t *testing.T) {
	eachWay(t, func(t *testing.T, st Store) {
		// 127 allocatable blocks (block 0 reserved); asking for more
		// must fail AND leave nothing allocated.
		before := 0
		if srv, ok := st.(*Server); ok {
			before = srv.InUse()
		}
		payloads := make([][]byte, 200)
		for i := range payloads {
			payloads[i] = []byte{byte(i)}
		}
		if _, err := AllocMulti(st, 1, payloads); !errors.Is(err, ErrNoSpace) {
			t.Fatalf("err = %v, want ErrNoSpace", err)
		}
		var after int
		switch v := st.(type) {
		case *Server:
			after = v.InUse()
		case opaque:
			after = v.Store.(*Server).InUse()
		}
		if after != before {
			t.Fatalf("InUse %d after failed AllocMulti, want %d (rollback)", after, before)
		}
	})
}

// countingTransactor counts round trips through an underlying
// transactor.
type countingTransactor struct {
	inner rpc.Transactor
	n     atomic.Int64
}

func (c *countingTransactor) Transact(port capability.Port, req *rpc.Message) (*rpc.Message, error) {
	c.n.Add(1)
	return c.inner.Transact(port, req)
}

// TestRemoteMultiRoundTripsPinned pins the headline number of the
// batching work: a 64-page commit-style flush (allocate 64 shadow
// blocks, write 64 pages of 4 KiB) over a TCP-mounted block store must
// cost at least 5× fewer round trips batched than unbatched.
func TestRemoteMultiRoundTripsPinned(t *testing.T) {
	srv, err := rpc.NewTCPServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	backing := NewServer(disk.MustNew(disk.Geometry{Blocks: 1024, BlockSize: 4096}))
	port := capability.NewPort().Public()
	srv.Register(port, Serve(backing))
	res := rpc.NewResolver()
	res.Set(port, srv.Addr())
	tcp := rpc.NewTCPClient(res)
	defer tcp.Close()
	ct := &countingTransactor{inner: tcp}
	remote, err := Dial(ct, port)
	if err != nil {
		t.Fatal(err)
	}

	const pages = 64
	payload := bytes.Repeat([]byte{0xA5}, 4096)

	// Unbatched: one Alloc and one Write per page.
	start := ct.n.Load()
	var unbatchedNums []Num
	for i := 0; i < pages; i++ {
		n, err := remote.Alloc(1, nil)
		if err != nil {
			t.Fatal(err)
		}
		unbatchedNums = append(unbatchedNums, n)
	}
	for _, n := range unbatchedNums {
		if err := remote.Write(1, n, payload); err != nil {
			t.Fatal(err)
		}
	}
	unbatched := ct.n.Load() - start

	// Batched: one AllocMulti plus a chunked WriteMulti.
	start = ct.n.Load()
	nums, err := AllocMulti(remote, 1, make([][]byte, pages))
	if err != nil {
		t.Fatal(err)
	}
	writes := make([][]byte, pages)
	for i := range writes {
		writes[i] = payload
	}
	if err := WriteMulti(remote, 1, nums, writes); err != nil {
		t.Fatal(err)
	}
	batched := ct.n.Load() - start

	t.Logf("64-page flush round trips: unbatched=%d batched=%d (%.1fx)",
		unbatched, batched, float64(unbatched)/float64(batched))
	if unbatched < 5*batched {
		t.Fatalf("round trips: unbatched %d vs batched %d — want ≥5× reduction", unbatched, batched)
	}

	// And the data must actually be there.
	got, err := ReadMulti(remote, 1, nums)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !bytes.Equal(got[i], payload) {
			t.Fatalf("page %d corrupt after batched flush", i)
		}
	}
}

func TestRemoteMultiErrorsKeepIdentity(t *testing.T) {
	remote, _ := dialTest(t)
	ms, ok := remote.(MultiStore)
	if !ok {
		t.Fatal("remote store should implement MultiStore")
	}
	mine, err := ms.AllocMulti(1, [][]byte{[]byte("x"), []byte("y")})
	if err != nil {
		t.Fatal(err)
	}
	theirs, _ := remote.Alloc(2, []byte("z"))
	if _, err := ms.ReadMulti(1, []Num{mine[0], theirs}); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("read err = %v", err)
	}
	if err := ms.WriteMulti(1, []Num{theirs}, [][]byte{[]byte("w")}); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("write err = %v", err)
	}
	if err := ms.FreeMulti(1, []Num{mine[0], theirs, mine[1]}); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("free err = %v", err)
	}
	if _, err := remote.Read(1, mine[1]); !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("mine[1] survived: %v", err)
	}
}

func TestServeRejectsHostileMultiCounts(t *testing.T) {
	// The multi-op counts come off the wire; a huge count with a tiny
	// body must produce a clean error reply, never an allocation panic.
	h := Serve(newMulti(t, 64, 256))
	for _, cmd := range []uint32{cmdReadMulti, cmdWriteMulti, cmdAllocMulti, cmdFreeMulti} {
		req := &rpc.Message{Command: cmd, Data: []byte{1, 2, 3}}
		req.Args[0] = 1
		req.Args[1] = 1 << 61
		resp := h(req)
		if resp.Status != rpc.StatusBadArgument {
			t.Fatalf("cmd %#x with hostile count: status %v, want bad argument", cmd, resp.Status)
		}
	}
}
