// Package stable implements the paper's §4 proposal for highly available
// block storage: every block is stored by *two block servers on two
// different disk drives* — a modification of Lampson & Sturgis' stable
// storage, which used one server and two drives.
//
// Protocol for allocate-and-write (and plain write), quoting §4:
//
//	"On request to allocate and write a block, the receiving block
//	server, say server A allocates a block on its local disk, then sends
//	a request to its companion block server, server B including the data
//	and the chosen block number. B then writes the block to disk at the
//	address indicated by A, and sends an acknowledgement back to A.
//	Finally A writes the data in its own block, and returns an
//	identifier for the block to the client."
//
// Because writes are always carried out on the companion disk first,
// allocate collisions (both halves choose the same number for different
// clients) and write collisions (two clients write the same block through
// different halves) are detected before damage is done; the caller redoes
// the operation, typically after a random wait.
//
// Reads may be served locally; only when the local copy is corrupt does a
// half consult its companion (and repair its own copy from the good one).
//
// After a crash a server "compares notes with its companion, and restores
// its disk before accepting any requests"; while a companion is down the
// surviving half appends every mutation to an intentions list which is
// replayed on recovery.
package stable

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/block"
	"repro/internal/disk"
)

// ErrCollision reports a simultaneous allocate or write detected at the
// companion; the client should redo the operation after a random wait.
var ErrCollision = errors.New("stable: collision detected")

// ErrBothDown reports that neither half of the pair is serving.
var ErrBothDown = errors.New("stable: both halves down")

// intent records one mutation performed while the companion was down.
type intent struct {
	op      byte // 'w' write, 'f' free, 'a' alloc
	n       block.Num
	account block.Account
	data    []byte
}

// Half is one of the two cooperating block servers in a pair. Its public
// surface is block.Store, so file services cannot tell a Half from a
// plain server — availability is transparent, as the paper intends.
type Half struct {
	name string
	srv  *block.Server

	mu        sync.Mutex
	companion *Half
	down      bool
	// intentions lists mutations to replay on companion recovery.
	// intentionsValid is cleared when this half itself crashes: a lost
	// list forces the rejoining companion to restore its disk by full
	// copy instead of replay.
	intentions      []intent
	intentionsValid bool

	// latches serialise companion-first writes per block. This is a
	// distinct facility from the block service's client-visible lock
	// (used for commit critical sections): a client may legitimately
	// write a block while holding its lock, and must not collide with
	// itself.
	latches map[block.Num]bool

	stats HalfStats
}

// HalfStats counts pair-protocol events at one half.
type HalfStats struct {
	CompanionWrites  uint64 // writes forwarded to companion first
	Collisions       uint64
	CorruptFallbacks uint64 // reads served via companion after local corruption
	IntentionsKept   uint64
	Replayed         uint64
}

// NewPair creates two halves over the given disks and joins them.
func NewPair(da, db *disk.Disk) (*Half, *Half) {
	a := &Half{name: "A", srv: block.NewServer(da), latches: make(map[block.Num]bool)}
	b := &Half{name: "B", srv: block.NewServer(db), latches: make(map[block.Num]bool)}
	a.companion = b
	b.companion = a
	return a, b
}

// TryLatch acquires the write-collision latch for block n, reporting
// whether it was free. Exposed for tests that stage deterministic
// collisions.
func (h *Half) TryLatch(n block.Num) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.latches[n] {
		return false
	}
	h.latches[n] = true
	return true
}

// Unlatch releases the write-collision latch.
func (h *Half) Unlatch(n block.Num) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.latches, n)
}

// Name identifies the half ("A" or "B") in logs.
func (h *Half) Name() string { return h.name }

// Stats returns a snapshot of the pair-protocol counters.
func (h *Half) Stats() HalfStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// Server exposes the underlying single block server (tests only).
func (h *Half) Server() *block.Server { return h.srv }

// Crash takes this half down: clients must use the companion.
func (h *Half) Crash() {
	h.mu.Lock()
	h.down = true
	// A crash loses the volatile intentions list; the validity flag
	// tells the rejoining companion to restore by full copy instead.
	h.intentions = nil
	h.intentionsValid = false
	h.mu.Unlock()
	h.srv.Disk().Crash()
}

// Down reports whether this half is crashed.
func (h *Half) Down() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.down
}

// Recover brings the half back: per §4, it "compares notes with its
// companion, and restores its disk before accepting any requests". The
// companion replays its intentions list here and hands over the
// allocation table.
func (h *Half) Rejoin() error {
	h.srv.Disk().Repair()

	comp := h.companion
	comp.mu.Lock()
	intentions := comp.intentions
	valid := comp.intentionsValid
	comp.intentions = nil
	comp.intentionsValid = false
	compDown := comp.down
	comp.mu.Unlock()

	if !compDown {
		// Adopt the companion's allocation table wholesale: it served
		// alone while we were down, so it is authoritative.
		owners := comp.srv.Owners()
		h.srv.Restore(owners)
		switch {
		case valid:
			// Fast path: replay only the mutations made during the
			// outage.
			for _, it := range intentions {
				switch it.op {
				case 'w', 'a':
					if err := h.srv.Disk().Write(int(it.n), it.data); err != nil {
						return fmt.Errorf("stable: replay %c block %d: %w", it.op, it.n, err)
					}
				case 'f':
					// Free already reflected in the adopted table.
				}
				comp.mu.Lock()
				comp.stats.Replayed++
				comp.mu.Unlock()
			}
		default:
			// The companion's intentions list did not survive (it
			// crashed too while we were down). Restore the disk by
			// copying every owned block — the slow but safe form of
			// §4's "compares notes with its companion, and restores
			// its disk before accepting any requests".
			for n := range owners {
				data, err := comp.srv.Disk().Read(int(n))
				if err != nil {
					return fmt.Errorf("stable: full-copy block %d: %w", n, err)
				}
				if err := h.srv.Disk().Write(int(n), data); err != nil {
					return fmt.Errorf("stable: full-copy block %d: %w", n, err)
				}
			}
		}
	}

	h.mu.Lock()
	h.down = false
	h.mu.Unlock()
	return nil
}

// BlockSize implements block.Store.
func (h *Half) BlockSize() int { return h.srv.BlockSize() }

// companionUp returns the companion if it is serving.
func (h *Half) companionUp() *Half {
	c := h.companion
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down {
		return nil
	}
	return c
}

// keepIntent records a mutation for later replay on the companion.
func (h *Half) keepIntent(it intent) {
	h.mu.Lock()
	if len(h.intentions) == 0 {
		// Starting a fresh outage record; it is complete from here on
		// unless we ourselves crash.
		h.intentionsValid = true
	}
	h.intentions = append(h.intentions, it)
	h.stats.IntentionsKept++
	h.mu.Unlock()
}

// Alloc implements block.Store with the companion-first write protocol.
func (h *Half) Alloc(account block.Account, data []byte) (block.Num, error) {
	if h.Down() {
		return block.NilNum, fmt.Errorf("stable: half %s down", h.name)
	}
	// Step 1: allocate locally (chooses the block number).
	n, err := h.srv.Alloc(account, data)
	if err != nil {
		return block.NilNum, err
	}
	// Step 2: companion writes first.
	comp := h.companionUp()
	if comp == nil {
		h.keepIntent(intent{op: 'a', n: n, account: account, data: append([]byte(nil), data...)})
		return n, nil
	}
	if err := comp.acceptCompanionAlloc(account, n, data); err != nil {
		// Collision: another client allocated the same number via the
		// companion. Undo and report; the client redoes the call.
		_ = h.srv.Free(account, n)
		if errors.Is(err, ErrCollision) {
			h.mu.Lock()
			h.stats.Collisions++
			h.mu.Unlock()
		}
		return block.NilNum, err
	}
	h.mu.Lock()
	h.stats.CompanionWrites++
	h.mu.Unlock()
	return n, nil
}

// acceptCompanionAlloc is the companion side of Alloc: claim the same
// block number and write the data. A claim that fails because the number
// is taken is exactly the paper's allocate collision.
func (h *Half) acceptCompanionAlloc(account block.Account, n block.Num, data []byte) error {
	if h.Down() {
		return fmt.Errorf("stable: half %s down", h.name)
	}
	if err := h.srv.Claim(account, n); err != nil {
		return fmt.Errorf("block %d: %w", n, ErrCollision)
	}
	if err := h.srv.Write(account, n, data); err != nil {
		_ = h.srv.Free(account, n)
		return err
	}
	return nil
}

// Free implements block.Store.
func (h *Half) Free(account block.Account, n block.Num) error {
	if h.Down() {
		return fmt.Errorf("stable: half %s down", h.name)
	}
	if err := h.srv.Free(account, n); err != nil {
		return err
	}
	if comp := h.companionUp(); comp != nil {
		_ = comp.srv.Free(account, n) // best-effort; recovery reconciles
	} else {
		h.keepIntent(intent{op: 'f', n: n, account: account})
	}
	return nil
}

// Read implements block.Store. Per §4, "For reads, the block server need
// not consult its companion server, except when the block on its disk is
// corrupted."
func (h *Half) Read(account block.Account, n block.Num) ([]byte, error) {
	if h.Down() {
		return nil, fmt.Errorf("stable: half %s down", h.name)
	}
	data, err := h.srv.Read(account, n)
	if err == nil {
		return data, nil
	}
	if !errors.Is(err, disk.ErrCorrupt) {
		return nil, err
	}
	comp := h.companionUp()
	if comp == nil {
		return nil, fmt.Errorf("stable: local corrupt and companion down: %w", err)
	}
	data, cerr := comp.srv.Read(account, n)
	if cerr != nil {
		return nil, fmt.Errorf("stable: both copies bad: local %v, companion %w", err, cerr)
	}
	// Repair the local copy from the good one.
	if werr := h.srv.Disk().Write(int(n), data); werr != nil {
		return nil, fmt.Errorf("stable: repair failed: %w", werr)
	}
	h.mu.Lock()
	h.stats.CorruptFallbacks++
	h.mu.Unlock()
	return data, nil
}

// Write implements block.Store with companion-first ordering, which makes
// write collisions detectable before damage is done: the companion
// serialises both clients' writes on its lock table.
func (h *Half) Write(account block.Account, n block.Num, data []byte) error {
	if h.Down() {
		return fmt.Errorf("stable: half %s down", h.name)
	}
	comp := h.companionUp()
	if comp == nil {
		if err := h.srv.Write(account, n, data); err != nil {
			return err
		}
		h.keepIntent(intent{op: 'w', n: n, account: account, data: append([]byte(nil), data...)})
		return nil
	}
	if err := comp.acceptCompanionWrite(account, n, data); err != nil {
		if errors.Is(err, ErrCollision) {
			h.mu.Lock()
			h.stats.Collisions++
			h.mu.Unlock()
		}
		return err
	}
	h.mu.Lock()
	h.stats.CompanionWrites++
	h.mu.Unlock()
	return h.srv.Write(account, n, data)
}

// acceptCompanionWrite performs the companion-first write under the
// block's write latch so concurrent writers of the same block via
// different halves collide here instead of interleaving.
func (h *Half) acceptCompanionWrite(account block.Account, n block.Num, data []byte) error {
	if h.Down() {
		return fmt.Errorf("stable: half %s down", h.name)
	}
	if !h.TryLatch(n) {
		return fmt.Errorf("block %d write: %w", n, ErrCollision)
	}
	defer h.Unlatch(n)
	return h.srv.Write(account, n, data)
}

// Lock implements block.Store; the lock lives on whichever half receives
// it plus its companion, so the commit critical section holds across the
// pair.
func (h *Half) Lock(account block.Account, n block.Num) error {
	if h.Down() {
		return fmt.Errorf("stable: half %s down", h.name)
	}
	if err := h.srv.Lock(account, n); err != nil {
		return err
	}
	if comp := h.companionUp(); comp != nil {
		if err := comp.srv.Lock(account, n); err != nil {
			_ = h.srv.Unlock(account, n)
			return err
		}
	}
	return nil
}

// Unlock implements block.Store.
func (h *Half) Unlock(account block.Account, n block.Num) error {
	if h.Down() {
		return fmt.Errorf("stable: half %s down", h.name)
	}
	if comp := h.companionUp(); comp != nil {
		_ = comp.srv.Unlock(account, n)
	}
	return h.srv.Unlock(account, n)
}

// Recover implements block.Store.
func (h *Half) Recover(account block.Account) ([]block.Num, error) {
	if h.Down() {
		if comp := h.companionUp(); comp != nil {
			return comp.srv.Recover(account)
		}
		return nil, ErrBothDown
	}
	return h.srv.Recover(account)
}

var _ block.Store = (*Half)(nil)

// Pair bundles both halves behind one block.Store that fails over
// automatically: requests go to the primary half and fall back to the
// companion, reproducing "Clients send requests to the alternative block
// server if the primary fails to respond."
type Pair struct {
	a, b *Half
	rng  *rand.Rand
	mu   sync.Mutex
}

// NewFailoverPair builds the two halves plus the failover front.
func NewFailoverPair(da, db *disk.Disk) *Pair {
	a, b := NewPair(da, db)
	return &Pair{a: a, b: b, rng: rand.New(rand.NewSource(1))}
}

// Halves returns the two halves for fault injection.
func (p *Pair) Halves() (*Half, *Half) { return p.a, p.b }

// pick returns a serving half, preferring A.
func (p *Pair) pick() (*Half, error) {
	if !p.a.Down() {
		return p.a, nil
	}
	if !p.b.Down() {
		return p.b, nil
	}
	return nil, ErrBothDown
}

// retryCollision runs fn, redoing it "after a random wait interval" when
// a collision is detected, as §4 prescribes.
func (p *Pair) retryCollision(fn func(h *Half) error) error {
	for attempt := 0; ; attempt++ {
		h, err := p.pick()
		if err != nil {
			return err
		}
		err = fn(h)
		if err == nil || !errors.Is(err, ErrCollision) {
			return err
		}
		if attempt > 16 {
			return err
		}
		// Random backoff: the simulated equivalent of the paper's
		// "redo the operation after a random wait interval". We spin
		// on the scheduler rather than sleeping to keep tests fast.
		p.mu.Lock()
		spins := p.rng.Intn(1 << uint(min(attempt, 8)))
		p.mu.Unlock()
		for i := 0; i < spins; i++ {
			_ = i
		}
	}
}

// BlockSize implements block.Store.
func (p *Pair) BlockSize() int { return p.a.BlockSize() }

// Alloc implements block.Store with failover and collision retry.
func (p *Pair) Alloc(account block.Account, data []byte) (block.Num, error) {
	var n block.Num
	err := p.retryCollision(func(h *Half) error {
		var e error
		n, e = h.Alloc(account, data)
		return e
	})
	return n, err
}

// Free implements block.Store.
func (p *Pair) Free(account block.Account, n block.Num) error {
	return p.retryCollision(func(h *Half) error { return h.Free(account, n) })
}

// Read implements block.Store.
func (p *Pair) Read(account block.Account, n block.Num) ([]byte, error) {
	h, err := p.pick()
	if err != nil {
		return nil, err
	}
	return h.Read(account, n)
}

// Write implements block.Store.
func (p *Pair) Write(account block.Account, n block.Num, data []byte) error {
	return p.retryCollision(func(h *Half) error { return h.Write(account, n, data) })
}

// Lock implements block.Store.
func (p *Pair) Lock(account block.Account, n block.Num) error {
	h, err := p.pick()
	if err != nil {
		return err
	}
	return h.Lock(account, n)
}

// Unlock implements block.Store.
func (p *Pair) Unlock(account block.Account, n block.Num) error {
	h, err := p.pick()
	if err != nil {
		return err
	}
	return h.Unlock(account, n)
}

// Recover implements block.Store.
func (p *Pair) Recover(account block.Account) ([]block.Num, error) {
	h, err := p.pick()
	if err != nil {
		return nil, err
	}
	return h.Recover(account)
}

var _ block.Store = (*Pair)(nil)

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
